#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/fault_injection.h"
#include "rel/key_codec.h"
#include "rel/parallel.h"
#include "rel/query.h"

namespace xprel::rel {

namespace {

// ---------------------------------------------------------------------------
// Value semantics: SQL comparison with implicit numeric coercion.
// ---------------------------------------------------------------------------

bool IsStringLike(const Value& v) {
  return v.type() == ValueType::kString || v.type() == ValueType::kBytes;
}

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt64 || v.type() == ValueType::kDouble;
}

// Three-valued comparison: nullopt = unknown (SQL NULL semantics, and also
// "string does not parse as a number" in a numeric comparison).
std::optional<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (IsStringLike(a) && IsStringLike(b)) {
    int c = a.AsStringLike().compare(b.AsStringLike());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    int64_t x = a.AsInt(), y = b.AsInt();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (IsNumeric(a) || IsNumeric(b)) {
    auto x = a.ToNumber();
    auto y = b.ToNumber();
    if (!x || !y) return std::nullopt;
    return *x < *y ? -1 : (*x > *y ? 1 : 0);
  }
  return std::nullopt;
}

// SQL LIKE with % and _ wildcards.
bool MatchLike(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// Truth of a boolean Value (null = unknown).
enum class Truth { kTrue, kFalse, kUnknown };

Truth TruthOf(const Value& v) {
  if (v.is_null()) return Truth::kUnknown;
  if (v.type() == ValueType::kInt64) {
    return v.AsInt() != 0 ? Truth::kTrue : Truth::kFalse;
  }
  return Truth::kFalse;
}

// ---------------------------------------------------------------------------
// Evaluation context
// ---------------------------------------------------------------------------

// The per-execution binding: slot -> pointer into table storage (or into an
// expression literal). Binding by pointer instead of copying Values is the
// single biggest per-row saving — most columns are strings (Dewey positions,
// paths, text) whose copies allocate.
using Binding = std::vector<const Value*>;

const Value kNullValue;  // shared referent for unbound slots

struct ExecContext {
  QueryStats* stats = nullptr;

  // Cooperative interruption (see ExecControl in query.h). `interrupt` is
  // sticky: once set, every enumeration loop unwinds via its abort path and
  // ExecutePlan returns it instead of a result.
  const ExecControl* control = nullptr;
  uint32_t control_tick = 0;
  Status interrupt;

  // Lazily built hash tables for kHashProbe steps, keyed by step address.
  // `built` is tracked explicitly so a build whose rows all yield non-text
  // keys (an empty table) is not re-run on every probe.
  struct HashTable {
    bool built = false;
    bool failed = false;  // shared-mode only: build aborted, see `error`
    Status error;         // shared-mode only: why the build failed
    std::unordered_map<std::string, std::vector<RowId>> map;
  };
  std::unordered_map<const AccessStep*, HashTable> hash_tables;

  // EXISTS semi-join memo: per EXISTS node, outcome keyed by the encoded
  // tuple of correlated outer values. Correlated EXISTS — the translator's
  // main predicate vehicle — thus costs O(distinct outer keys), not
  // O(outer rows).
  std::unordered_map<const CompiledExpr*, std::unordered_map<std::string, bool>>
      exists_memo;
  std::string memo_key;  // reusable key-encoding buffer

  // Decorrelated EXISTS key sets (see Plan::semijoin_keys), built once per
  // execution per subplan by running the subplan's uncorrelated build plan.
  struct SemiSet {
    bool built = false;
    bool failed = false;  // build plan errored: always fall back
    Status error;         // shared-mode only: why the build failed
    std::unordered_set<std::string> keys;
  };
  std::unordered_map<const Plan*, SemiSet> semi_sets;

  // Plan-wide state shared by all morsels of one parallel execution (hash
  // tables and semi-join key sets are built once per query, not once per
  // morsel). Null for serial executions. See SharedPlanState below.
  struct SharedPlanState* shared = nullptr;

  // Per-context view of shared semi-sets that are known fully built, so the
  // probe fast path skips the shared mutex after the first touch.
  std::unordered_map<const Plan*, const SemiSet*> semi_view;

  // When set, ChargeMem routes to the shared state's reservation (held until
  // the coordinator releases it) instead of this context's transient lease.
  // Only the builder of a shared structure flips this, under the shared lock.
  bool charge_shared = false;

  // Memory governance (see ExecControl::budget). Charges accumulate in
  // `mem_pending` and flush to the shared budget in kBudgetChunk steps, so
  // the steady-state per-row cost is one addition, not one atomic RMW.
  // Everything flushed is tracked in `mem_reserved` and returned when the
  // execution ends (the context's transient state dies with it).
  MemoryBudget* budget = nullptr;
  size_t mem_pending = 0;
  size_t mem_reserved = 0;

  // Effective rows-per-batch for the vectorized driver (see ExecControl).
  uint32_t batch_size = kDefaultBatchSize;

  // Reusable per-regex NFA scratch: REGEXP_LIKE evaluation goes through
  // these, so steady-state matching never allocates state lists.
  std::unordered_map<const rex::Regex*, rex::BatchMatcher> matchers;

  // Per-filter dictionary verdict memos (batch executor): a single-column
  // filter is evaluated once per distinct dictionary code of that column,
  // not once per row. Lazily sized; skipped for near-unique columns.
  struct DictMemo {
    bool decided = false;
    bool use_memo = false;
    std::vector<int8_t> verdict;  // by dict code; -1 unknown, 0 no, 1 yes
  };
  std::unordered_map<const CompiledExpr*, DictMemo> dict_memos;

  // Stack of key-encoding buffer pairs handed to RunSteps frames (deque:
  // stable addresses across growth). Capacity persists across probes, so
  // steady-state probing never allocates for key bounds.
  std::deque<std::array<std::string, 2>> key_bufs;
  size_t key_buf_depth = 0;
};

// RAII lease of one (lo, hi) buffer pair from the context's pool.
class KeyBufs {
 public:
  explicit KeyBufs(ExecContext& ctx) : ctx_(ctx) {
    if (ctx_.key_buf_depth == ctx_.key_bufs.size()) ctx_.key_bufs.emplace_back();
    bufs_ = &ctx_.key_bufs[ctx_.key_buf_depth++];
  }
  ~KeyBufs() { --ctx_.key_buf_depth; }
  KeyBufs(const KeyBufs&) = delete;
  KeyBufs& operator=(const KeyBufs&) = delete;

  std::string& lo() { return (*bufs_)[0]; }
  std::string& hi() { return (*bufs_)[1]; }

 private:
  ExecContext& ctx_;
  std::array<std::string, 2>* bufs_;
};

// State shared by every morsel of one parallel plan execution. Hash-join
// build sides and decorrelated semi-join key sets are query-level artifacts:
// building them per morsel would multiply both time and memory by the shard
// count, so the first morsel to need one builds it under `mu` (itself
// fanning the hash build out over Dewey-range shards) and the rest reuse it.
// Reservations for shared structures outlive any single morsel's lease, so
// they are tracked here and released by the coordinator after the run.
struct SharedPlanState {
  std::mutex mu;
  TaskRunner* runner = nullptr;  // for nested fan-out of the hash build
  int parallelism = 1;
  MemoryBudget* budget = nullptr;  // the query budget (nullable)
  size_t mem_pending = 0;          // guarded by mu
  size_t reserved = 0;             // guarded by mu; released by coordinator
  std::unordered_map<const AccessStep*, ExecContext::HashTable> hash_tables;
  std::unordered_map<const Plan*, ExecContext::SemiSet> semi_sets;
};

// Budget charges flush to the shared MemoryBudget in chunks of this size;
// totals below it are never refused, which keeps tiny queries entirely off
// the atomic counters.
constexpr size_t kBudgetChunk = 64 * 1024;

// Charges `bytes` against the shared plan state's reservation. Caller must
// hold ctx.shared->mu. Mirrors ChargeMem's chunked flush; on refusal the
// interrupt is armed and the builder unwinds like any other morsel failure.
bool ChargeShared(ExecContext& ctx, size_t bytes, const char* what) {
  SharedPlanState& sh = *ctx.shared;
  if (sh.budget == nullptr) return true;
  sh.mem_pending += bytes;
  if (sh.mem_pending < kBudgetChunk) return true;
  size_t take = sh.mem_pending;
  sh.mem_pending = 0;
  Status s = sh.budget->Reserve(take, what);
  if (!s.ok()) {
    if (ctx.interrupt.ok()) ctx.interrupt = std::move(s);
    return false;
  }
  sh.reserved += take;
  return true;
}

// Charges `bytes` of transient execution memory. Returns false (and arms
// ctx.interrupt with ResourceExhausted) when the budget refuses, so callers
// unwind through the same abort path as a cancellation.
bool ChargeMem(ExecContext& ctx, size_t bytes, const char* what) {
  if (ctx.charge_shared && ctx.shared != nullptr) {
    return ChargeShared(ctx, bytes, what);
  }
  if (ctx.budget == nullptr) return true;
  ctx.mem_pending += bytes;
  if (ctx.mem_pending < kBudgetChunk) return true;
  size_t take = ctx.mem_pending;
  ctx.mem_pending = 0;
  Status s = ctx.budget->Reserve(take, what);
  if (!s.ok()) {
    if (ctx.interrupt.ok()) ctx.interrupt = std::move(s);
    return false;
  }
  ctx.mem_reserved += take;
  return true;
}

// Approximate heap residency of one materialized row (header, slots, string
// payloads). An estimate is fine: the budget bounds order-of-magnitude
// blowups, it is not an allocator.
size_t ApproxRowBytes(const Row& row) {
  size_t n = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (IsStringLike(v)) n += v.AsStringLike().size();
  }
  return n;
}

// Crosses a fault-injection point from a bool-returning enumeration frame:
// an injected error lands in ctx.interrupt and aborts like a cancellation.
bool FaultOk(ExecContext& ctx, const char* point) {
  Status s = XPREL_FAULT_POINT(point);
  if (s.ok()) return true;
  if (ctx.interrupt.ok()) ctx.interrupt = std::move(s);
  return false;
}

// Samples the cancellation flag and the deadline clock, recording the first
// trigger in ctx.interrupt. Returns true when the execution must unwind.
bool CheckControlNow(ExecContext& ctx) {
  if (!ctx.interrupt.ok()) return true;
  const ExecControl* c = ctx.control;
  if (c == nullptr) return false;
  if (c->cancel != nullptr && c->cancel->load(std::memory_order_relaxed)) {
    ctx.interrupt = Status::Cancelled("query cancelled");
    return true;
  }
  if (c->has_deadline && std::chrono::steady_clock::now() >= c->deadline) {
    ctx.interrupt = Status::DeadlineExceeded("query deadline exceeded");
    return true;
  }
  if (c->group_abort != nullptr &&
      c->group_abort->load(std::memory_order_relaxed)) {
    // A sibling morsel failed first; the coordinator reports the sibling's
    // status and drops this one (see ExecutePlanChunksParallel).
    ctx.interrupt = Status::Cancelled("sibling morsel aborted");
    return true;
  }
  return false;
}

// Per-row interruption probe: one increment per row, a real check (atomic
// load + possibly a clock read) every check_interval rows.
inline bool Interrupted(ExecContext& ctx) {
  if (!ctx.interrupt.ok()) return true;
  if (ctx.control == nullptr) return false;
  if (++ctx.control_tick < ctx.control->check_interval) return false;
  ctx.control_tick = 0;
  return CheckControlNow(ctx);
}

// Batch-granular probe: accumulates `rows` ticks in one addition and does at
// most one real check, so the configured check_interval cadence holds while
// the per-row cost disappears.
inline bool BatchInterrupted(ExecContext& ctx, size_t rows) {
  if (!ctx.interrupt.ok()) return true;
  if (ctx.control == nullptr || rows == 0) return false;
  ctx.control_tick += static_cast<uint32_t>(std::min<size_t>(rows, 1u << 20));
  if (ctx.control_tick < ctx.control->check_interval) return false;
  ctx.control_tick = 0;
  return CheckControlNow(ctx);
}

Value EvalExpr(const CompiledExpr& e, Binding& b, ExecContext& ctx);

bool ExecExists(const Plan& subplan, Binding& b, ExecContext& ctx);

// Decorrelated EXISTS: answers via the build-once semi-join key set.
// nullopt = the probe value cannot be mapped onto the inner key encoding
// (e.g. a numeric probe against a text column) — caller falls back to the
// memoized per-row subplan run. Updates the EXISTS cache counters itself.
std::optional<bool> ProbeSemiJoin(const Plan& sub, Binding& b,
                                  ExecContext& ctx);

// Evaluates `e` without copying when the result already lives somewhere
// stable: columns alias table storage, literals alias the compiled plan.
// Computed results land in `tmp`, whose lifetime the caller controls.
const Value& EvalRef(const CompiledExpr& e, Binding& b, ExecContext& ctx,
                     Value& tmp) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      return *b[static_cast<size_t>(e.slot)];
    case SqlExpr::Kind::kLiteral:
      return e.literal;
    default:
      tmp = EvalExpr(e, b, ctx);
      return tmp;
  }
}

Value EvalExpr(const CompiledExpr& e, Binding& b, ExecContext& ctx) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      return *b[static_cast<size_t>(e.slot)];
    case SqlExpr::Kind::kLiteral:
      return e.literal;
    case SqlExpr::Kind::kBinary: {
      if (e.op == SqlExpr::BinOp::kAnd || e.op == SqlExpr::BinOp::kOr) {
        Value t0;
        Truth a = TruthOf(EvalRef(*e.args[0], b, ctx, t0));
        // Short-circuit.
        if (e.op == SqlExpr::BinOp::kAnd && a == Truth::kFalse) {
          return Value::Int(0);
        }
        if (e.op == SqlExpr::BinOp::kOr && a == Truth::kTrue) {
          return Value::Int(1);
        }
        Value t1;
        Truth bt = TruthOf(EvalRef(*e.args[1], b, ctx, t1));
        if (e.op == SqlExpr::BinOp::kAnd) {
          if (bt == Truth::kFalse) return Value::Int(0);
          if (a == Truth::kTrue && bt == Truth::kTrue) return Value::Int(1);
          return Value::Null();
        }
        if (bt == Truth::kTrue) return Value::Int(1);
        if (a == Truth::kFalse && bt == Truth::kFalse) return Value::Int(0);
        return Value::Null();
      }
      Value ta, tb;
      const Value& x = EvalRef(*e.args[0], b, ctx, ta);
      const Value& y = EvalRef(*e.args[1], b, ctx, tb);
      auto cmp = CompareValues(x, y);
      if (!cmp) return Value::Null();
      bool r = false;
      switch (e.op) {
        case SqlExpr::BinOp::kEq:
          r = *cmp == 0;
          break;
        case SqlExpr::BinOp::kNe:
          r = *cmp != 0;
          break;
        case SqlExpr::BinOp::kLt:
          r = *cmp < 0;
          break;
        case SqlExpr::BinOp::kLe:
          r = *cmp <= 0;
          break;
        case SqlExpr::BinOp::kGt:
          r = *cmp > 0;
          break;
        case SqlExpr::BinOp::kGe:
          r = *cmp >= 0;
          break;
        default:
          return Value::Null();
      }
      return Value::Int(r ? 1 : 0);
    }
    case SqlExpr::Kind::kNot: {
      Value t0;
      Truth t = TruthOf(EvalRef(*e.args[0], b, ctx, t0));
      if (t == Truth::kUnknown) return Value::Null();
      return Value::Int(t == Truth::kFalse ? 1 : 0);
    }
    case SqlExpr::Kind::kBetween: {
      Value t0, t1, t2;
      const Value& v = EvalRef(*e.args[0], b, ctx, t0);
      const Value& lo = EvalRef(*e.args[1], b, ctx, t1);
      const Value& hi = EvalRef(*e.args[2], b, ctx, t2);
      auto c1 = CompareValues(v, lo);
      auto c2 = CompareValues(v, hi);
      if (!c1 || !c2) return Value::Null();
      return Value::Int((*c1 >= 0 && *c2 <= 0) ? 1 : 0);
    }
    case SqlExpr::Kind::kConcat: {
      Value t0, t1;
      const Value& a = EvalRef(*e.args[0], b, ctx, t0);
      const Value& c = EvalRef(*e.args[1], b, ctx, t1);
      if (a.is_null() || c.is_null()) return Value::Null();
      auto at = a.ToText();
      auto ct = c.ToText();
      if (!at || !ct) return Value::Null();
      bool bytes = a.type() == ValueType::kBytes || c.type() == ValueType::kBytes;
      std::string s = *at + *ct;
      return bytes ? Value::Bytes(std::move(s)) : Value::Str(std::move(s));
    }
    case SqlExpr::Kind::kExists: {
      if (ctx.stats != nullptr) ++ctx.stats->subquery_evals;
      if (e.subplan->semijoin_decorrelated) {
        auto r = ProbeSemiJoin(*e.subplan, b, ctx);
        if (r.has_value()) return Value::Int(*r ? 1 : 0);
      }
      auto& memo = ctx.exists_memo[&e];
      ctx.memo_key.clear();
      for (int s : e.correlated_slots) {
        AppendEncodedValue(*b[static_cast<size_t>(s)], ctx.memo_key);
      }
      auto [it, inserted] = memo.try_emplace(ctx.memo_key, false);
      if (!inserted) {
        if (ctx.stats != nullptr) ++ctx.stats->exists_cache_hits;
        return Value::Int(it->second ? 1 : 0);
      }
      // An injected or budget-refused insert unwinds via ctx.interrupt; the
      // entry is removed so a pristine memo survives, and the Null return is
      // never consumed as a verdict (enumeration aborts on the interrupt
      // before trusting it).
      if (!FaultOk(ctx, "rel.exists_memo_insert") ||
          !ChargeMem(ctx, ctx.memo_key.size() + 64, "EXISTS memo")) {
        memo.erase(it);
        return Value::Null();
      }
      if (ctx.stats != nullptr) ++ctx.stats->exists_cache_misses;
      // Nested EXISTS nodes are distinct, so recursion touches other inner
      // maps only; references into `memo` stay valid across it.
      bool found = ExecExists(*e.subplan, b, ctx);
      if (!ctx.interrupt.ok()) {
        // The subplan was cut short: its verdict is not trustworthy, so it
        // must not be memoized (a later retry would read a wrong `false`).
        memo.erase(it);
        return Value::Null();
      }
      it->second = found;
      return Value::Int(found ? 1 : 0);
    }
    case SqlExpr::Kind::kRegexpLike: {
      Value t0;
      const Value& text = EvalRef(*e.args[0], b, ctx, t0);
      if (text.is_null()) return Value::Null();
      // The context-pooled matcher keeps the NFA state lists alive across
      // rows, so steady-state matching never allocates.
      rex::BatchMatcher& m =
          ctx.matchers.try_emplace(e.regex, *e.regex).first->second;
      if (IsStringLike(text)) {
        return Value::Int(m.Match(text.AsStringLike()) ? 1 : 0);
      }
      auto t = text.ToText();
      if (!t) return Value::Null();
      return Value::Int(m.Match(*t) ? 1 : 0);
    }
    case SqlExpr::Kind::kLike: {
      Value t0, t1;
      const Value& text = EvalRef(*e.args[0], b, ctx, t0);
      const Value& pattern = EvalRef(*e.args[1], b, ctx, t1);
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (IsStringLike(text) && IsStringLike(pattern)) {
        return Value::Int(
            MatchLike(text.AsStringLike(), pattern.AsStringLike()) ? 1 : 0);
      }
      auto t = text.ToText();
      auto p = pattern.ToText();
      if (!t || !p) return Value::Null();
      return Value::Int(MatchLike(*t, *p) ? 1 : 0);
    }
    case SqlExpr::Kind::kIsNull: {
      Value t0;
      return Value::Int(EvalRef(*e.args[0], b, ctx, t0).is_null() ? 1 : 0);
    }
    case SqlExpr::Kind::kLength: {
      Value t0;
      const Value& v = EvalRef(*e.args[0], b, ctx, t0);
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kString || v.type() == ValueType::kBytes) {
        return Value::Int(static_cast<int64_t>(v.AsStringLike().size()));
      }
      auto t = v.ToText();
      if (!t) return Value::Null();
      return Value::Int(static_cast<int64_t>(t->size()));
    }
    case SqlExpr::Kind::kAdd: {
      Value t0, t1;
      const Value& a = EvalRef(*e.args[0], b, ctx, t0);
      const Value& c = EvalRef(*e.args[1], b, ctx, t1);
      if (a.type() == ValueType::kInt64 && c.type() == ValueType::kInt64) {
        return Value::Int(a.AsInt() + c.AsInt());
      }
      auto x = a.ToNumber();
      auto y = c.ToNumber();
      if (!x || !y) return Value::Null();
      return Value::Real(*x + *y);
    }
  }
  return Value::Null();
}

// Coerces `v` to the storage type of a column so encoded index keys compare
// correctly (e.g. a concatenated Dewey bound arrives as kBytes for a kBytes
// column; an int literal probes an int column). The target type is resolved
// by the planner, never re-derived per row.
Value CoerceForColumn(const Value& v, ValueType target) {
  if (v.is_null() || v.type() == target) return v;
  switch (target) {
    case ValueType::kInt64: {
      auto n = v.ToNumber();
      if (!n) return Value::Null();
      return Value::Int(static_cast<int64_t>(*n));
    }
    case ValueType::kDouble: {
      auto n = v.ToNumber();
      if (!n) return Value::Null();
      return Value::Real(*n);
    }
    case ValueType::kString: {
      auto t = v.ToText();
      if (!t) return Value::Null();
      return Value::Str(std::move(*t));
    }
    case ValueType::kBytes: {
      if (IsStringLike(v)) return Value::Bytes(v.AsStringLike());
      return Value::Null();
    }
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

// Copy-free coercion: returns `v` itself when it already has the target
// type, otherwise the coerced value parked in `tmp`.
const Value& CoerceRef(const Value& v, ValueType target, Value& tmp) {
  if (v.is_null() || v.type() == target) return v;
  tmp = CoerceForColumn(v, target);
  return tmp;
}

// ---------------------------------------------------------------------------
// Step enumeration
// ---------------------------------------------------------------------------

// Points the binding slots at table row `rid` in place (no Value copies).
void BindRow(const Table& table, RowId rid, int offset, Binding& b) {
  const size_t n = table.schema().columns.size();
  for (size_t c = 0; c < n; ++c) {
    b[static_cast<size_t>(offset) + c] = &table.at(rid, c);
  }
}

// Builds (once) the hash table for a kHashProbe step, column-wise: the join
// key is encoded once per distinct dictionary code, then the code vector is
// swept, so rows sharing a key value share one encoding. Control probes and
// budget charges run once per 4K-row block, not per row. Returns nullptr
// when the build aborted (fault, cancellation, refused reservation).
ExecContext::HashTable* EnsureHashTable(const AccessStep& step,
                                        ExecContext& ctx) {
  ExecContext::HashTable& ht = ctx.hash_tables[&step];
  if (ht.built) return &ht;
  ht.built = true;
  if (!FaultOk(ctx, "rel.hash_build")) return nullptr;
  if (ctx.stats != nullptr) ++ctx.stats->hash_tables_built;
  const Table& table = *step.table;
  const size_t col = static_cast<size_t>(step.hash_column);
  const size_t dict_n = table.dict_size(col);
  std::vector<std::string> enc(dict_n);
  std::vector<char> keyed(dict_n, 0);
  for (size_t code = 0; code < dict_n; ++code) {
    const Value& v = table.dict_value(col, static_cast<uint32_t>(code));
    // Values of a foreign type never land in the probed key space (mirrors
    // an index probe, which scans only the key's tag region).
    if (v.is_null() || v.type() != step.hash_key_type) continue;
    AppendEncodedValue(v, enc[code]);
    keyed[code] = 1;
  }
  const std::vector<uint32_t>& codes = table.codes(col);
  size_t pending_rows = 0;
  size_t pending_bytes = 0;
  for (size_t rid = 0; rid < codes.size(); ++rid) {
    const uint32_t code = codes[rid];
    ++pending_rows;
    if (keyed[code]) {
      pending_bytes += enc[code].size() + sizeof(RowId) + 48;
      ht.map[enc[code]].push_back(static_cast<RowId>(rid));
    }
    if ((rid & 4095u) == 4095u) {
      if (BatchInterrupted(ctx, pending_rows) ||
          !ChargeMem(ctx, pending_bytes, "hash join build")) {
        return nullptr;
      }
      pending_rows = 0;
      pending_bytes = 0;
    }
  }
  if (BatchInterrupted(ctx, pending_rows) ||
      !ChargeMem(ctx, pending_bytes, "hash join build")) {
    return nullptr;
  }
  return &ht;
}

// Shared-mode hash build: the build side is itself partitioned into
// Dewey-range shards, each swept into a private map, merged in shard order
// (so per-key row-id lists stay in ascending document order — identical to
// the serial build). Caller holds ctx.shared->mu; shard bodies touch no
// shared state and poll only the immutable control block, so fanning out
// while holding the lock is safe.
bool BuildSharedHashTable(const AccessStep& step, ExecContext& ctx,
                          ExecContext::HashTable& ht) {
  SharedPlanState& sh = *ctx.shared;
  const Table& table = *step.table;
  const size_t col = static_cast<size_t>(step.hash_column);
  const size_t dict_n = table.dict_size(col);
  std::vector<std::string> enc(dict_n);
  std::vector<char> keyed(dict_n, 0);
  for (size_t code = 0; code < dict_n; ++code) {
    const Value& v = table.dict_value(col, static_cast<uint32_t>(code));
    if (v.is_null() || v.type() != step.hash_key_type) continue;
    AppendEncodedValue(v, enc[code]);
    keyed[code] = 1;
  }
  const std::vector<uint32_t>& codes = table.codes(col);
  std::vector<MorselRange> ranges =
      ComputeMorselRanges(codes.size(), sh.parallelism);
  struct Shard {
    std::unordered_map<std::string, std::vector<RowId>> map;
    size_t bytes = 0;
  };
  std::vector<Shard> shards(ranges.size());
  const ExecControl* control = ctx.control;
  std::atomic<bool> aborted{false};
  RunMorsels(ranges.size(), sh.parallelism, sh.runner, [&](size_t i) {
    Shard& shard = shards[i];
    size_t tick = 0;
    for (RowId rid = ranges[i].lo; rid < ranges[i].hi; ++rid) {
      const uint32_t code = codes[rid];
      if (keyed[code]) {
        shard.bytes += enc[code].size() + sizeof(RowId) + 48;
        shard.map[enc[code]].push_back(rid);
      }
      if ((++tick & 4095u) == 0 &&
          ((control != nullptr && control->Expired()) ||
           aborted.load(std::memory_order_relaxed))) {
        aborted.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (aborted.load(std::memory_order_relaxed)) {
    CheckControlNow(ctx);
    if (ctx.interrupt.ok()) ctx.interrupt = Status::Cancelled("query cancelled");
    return false;
  }
  size_t bytes = 0;
  for (Shard& shard : shards) {
    bytes += shard.bytes;
    for (auto& [key, rids] : shard.map) {
      std::vector<RowId>& dst = ht.map[key];
      dst.insert(dst.end(), rids.begin(), rids.end());
    }
  }
  if (!ChargeShared(ctx, bytes, "hash join build")) return false;
  return BatchInterrupted(ctx, codes.size()) ? false : ctx.interrupt.ok();
}

// Shared-mode entry: the first morsel to probe a step builds its table under
// the plan-wide lock (the build itself fans out, above); later morsels reuse
// it. A failed build is poisoned so no morsel ever probes a partial map —
// late arrivals re-arm their own interrupt from the stored error.
ExecContext::HashTable* EnsureSharedHashTable(const AccessStep& step,
                                              ExecContext& ctx) {
  SharedPlanState& sh = *ctx.shared;
  std::lock_guard<std::mutex> lock(sh.mu);
  ExecContext::HashTable& ht = sh.hash_tables[&step];
  if (ht.built) {
    if (ht.failed) {
      if (ctx.interrupt.ok()) {
        ctx.interrupt = ht.error.ok()
                            ? Status::Cancelled("sibling morsel aborted")
                            : ht.error;
      }
      return nullptr;
    }
    return &ht;
  }
  ht.built = true;
  if (!FaultOk(ctx, "rel.hash_build")) {
    ht.failed = true;
    ht.error = ctx.interrupt;
    return nullptr;
  }
  if (ctx.stats != nullptr) ++ctx.stats->hash_tables_built;
  if (!BuildSharedHashTable(step, ctx, ht)) {
    ht.failed = true;
    ht.error = ctx.interrupt;
    ht.map.clear();
    return nullptr;
  }
  return &ht;
}

ExecContext::HashTable* GetHashTable(const AccessStep& step, ExecContext& ctx) {
  return ctx.shared != nullptr ? EnsureSharedHashTable(step, ctx)
                               : EnsureHashTable(step, ctx);
}

// ---------------------------------------------------------------------------
// Vectorized batch driver
// ---------------------------------------------------------------------------
//
// The main execution path: top-level plans run batch-at-a-time, not
// row-at-a-time. Each pipeline depth d owns an accumulator of partial tuples
// (one RowId per step bound so far). Enumerating step d appends candidates
// to the accumulator; when it fills to the batch size it is flushed: one
// interruption probe and one stats update cover the whole batch, the step's
// residual filters run as tight loops over a selection vector (a filter
// reading one column is evaluated once per distinct dictionary code of that
// column, not once per row), and the survivors feed depth d+1 — or the sink
// at the last depth. Tuples flow in the same outer-major order the
// row-at-a-time executor produced, so results are order-identical.
//
// Merge-join steps accumulate their entire outer side (across all batches),
// then sweep the pre-sorted inner rows once — the staircase pass of the
// paper — emitting matches back into the depth's accumulator.

struct TupleBatch {
  // cols[s][i] is the RowId bound at step s for tuple i, for i < rows.
  std::vector<std::vector<RowId>> cols;
  std::vector<uint32_t> sel;  // surviving tuple indexes after filters
  size_t rows = 0;

  void Clear() {
    for (std::vector<RowId>& c : cols) c.clear();
    sel.clear();
    rows = 0;
  }
};

constexpr RowId kNoRowBound = std::numeric_limits<RowId>::max();

class BatchDriver {
 public:
  // `sink` receives every surviving full-width batch (cols sized to the plan
  // depth, sel selecting the survivors). Returning false stops the run;
  // ctx.interrupt distinguishes an abort from a voluntary stop.
  //
  // When `partition_step >= 0` the driver executes one morsel of a parallel
  // run: enumeration at that step is restricted to row ids in `range`
  // (a Dewey range — see parallel.h). Every other step runs in full, so the
  // union over a partition of ranges reproduces the serial output exactly.
  //
  // `cap_override`, when non-zero, replaces ctx.batch_size as the flush
  // granularity (EXISTS runs with small batches to keep early exit cheap).
  //
  // `steps`, when set, is an array of plan.steps.size() StepStats this run
  // accumulates per-step actuals into (see ExecTrace in query.h). EXISTS
  // subplan drivers always run with steps == nullptr — their wall time and
  // row work attribute to the step owning the EXISTS filter, because the
  // owner's phase clock keeps running while the subplan executes.
  BatchDriver(const Plan& plan, Binding& b, ExecContext& ctx,
              std::function<bool(const TupleBatch&)> sink,
              int partition_step = -1, MorselRange range = {},
              uint32_t cap_override = 0, StepStats* steps = nullptr)
      : plan_(plan),
        b_(b),
        ctx_(ctx),
        sink_(std::move(sink)),
        cap_(cap_override != 0 ? cap_override : ctx.batch_size),
        pstep_(partition_step),
        range_(range),
        steps_(steps) {
    const size_t n = plan.steps.size();
    stage_.resize(n);
    for (size_t d = 0; d < n; ++d) stage_[d].cols.resize(d + 1);
    last_bound_.assign(n, kNoRowBound);
    merge_.resize(n);
    dead_rows_.resize(n);
    for (size_t d = 0; d < n; ++d) {
      dead_rows_[d] = plan.steps[d].table->has_dead_rows();
    }
  }

  bool Run() {
    const bool ok = RunInner();
    // Flush the last open phase into its step so traced totals cover the
    // whole run (no-op without a trace: Attribute is never entered).
    if (steps_ != nullptr) Attribute(-1);
    return ok;
  }

  // Points the binding at tuple `pos` of the depth-d batch `tb`, rebinding
  // only steps whose row changed — batches are outer-major, so outer slots
  // rebind once per run of inner rows.
  void BindTuple(size_t d, const TupleBatch& tb, uint32_t pos) {
    for (size_t s = 0; s <= d; ++s) {
      const RowId rid = tb.cols[s][pos];
      if (last_bound_[s] == rid) continue;
      const AccessStep& os = plan_.steps[s];
      BindRow(*os.table, rid, os.bind_offset, b_);
      last_bound_[s] = rid;
    }
  }

 private:
  bool RunInner() {
    // A virtual width-0 outer tuple seeds the pipeline, so step 0 needs no
    // special-casing (even a merge join at depth 0 collects one outer).
    TupleBatch seed;
    seed.rows = 1;
    seed.sel.push_back(0);
    if (!Feed(0, seed)) return false;
    // Drain in depth order: a merge step sweeps its collected outers first
    // (appending matches at its own depth), then the depth's partial batch
    // flushes downstream.
    for (size_t d = 0; d < plan_.steps.size(); ++d) {
      if (plan_.steps[d].path == AccessPathKind::kMergeJoin &&
          !SweepMerge(d)) {
        return false;
      }
      if (!Flush(d)) return false;
    }
    return ctx_.interrupt.ok();
  }

  // Phase-switching wall-time attribution: charges the time since the last
  // switch to the step that was current, then makes `next` current. Called
  // only at batch boundaries (feed, flush, merge sweep) — one clock read
  // per switch, never per row — and only when a trace is attached, which is
  // what keeps traced runs within the ≤5% overhead budget and untraced
  // runs at zero clock reads.
  void Attribute(int next) {
    const uint64_t now = TraceClock::NowUs();
    if (cur_step_ >= 0 && now >= phase_start_us_) {
      steps_[cur_step_].time_us += now - phase_start_us_;
    }
    phase_start_us_ = now;
    cur_step_ = next;
  }

  // One collected merge-join outer tuple: the rows bound for the steps above
  // the merge plus its join key, evaluated at collection time.
  struct OuterTuple {
    std::vector<RowId> rids;
    std::string key;  // kAncestor: the Dewey payload to find prefixes of
    Value lo, hi;     // kRange: bounds coerced to the column type
  };
  struct MergeState {
    std::vector<OuterTuple> outers;
  };

  void BindOuter(size_t d, const TupleBatch& outer, uint32_t pos) {
    if (d > 0) BindTuple(d - 1, outer, pos);
  }

  // Appends one candidate tuple (outer prefix + rid at depth d), flushing
  // when the accumulator reaches the batch size. Tombstoned rows are
  // rejected here — the single admission chokepoint for seq scans, index
  // probes, hash probes, and index unions. (Merge joins emit from the
  // plan-time merge_order, which the planner rebuilds from the indexes —
  // already tombstone-free — whenever a table version changes.)
  bool Append(size_t d, const TupleBatch& outer, uint32_t opos, RowId rid) {
    if (dead_rows_[d] && plan_.steps[d].table->row_dead(rid)) return true;
    TupleBatch& tb = stage_[d];
    for (size_t s = 0; s < d; ++s) tb.cols[s].push_back(outer.cols[s][opos]);
    tb.cols[d].push_back(rid);
    if (++tb.rows < cap_) return true;
    return Flush(d);
  }

  // Feeds every selected tuple of `outer` into step d's enumeration.
  bool Feed(size_t d, const TupleBatch& outer) {
    if (steps_ != nullptr) Attribute(static_cast<int>(d));
    if (plan_.steps[d].path == AccessPathKind::kMergeJoin) {
      return CollectMerge(d, outer);
    }
    for (uint32_t pos : outer.sel) {
      if (!ctx_.interrupt.ok()) return false;
      BindOuter(d, outer, pos);
      if (!EnumerateStep(d, outer, pos)) return false;
    }
    return true;
  }

  // Flushes the depth-d accumulator: batch probe, batch stats, filters, then
  // survivors feed downstream (or the sink at the last depth).
  bool Flush(size_t d) {
    TupleBatch& tb = stage_[d];
    if (tb.rows == 0) return true;
    if (steps_ != nullptr) Attribute(static_cast<int>(d));
    if (BatchInterrupted(ctx_, tb.rows)) {
      tb.Clear();
      return false;
    }
    if (ctx_.stats != nullptr) ctx_.stats->rows_scanned += tb.rows;
    ApplyFilters(d, tb);
    if (steps_ != nullptr) {
      StepStats& ss = steps_[d];
      ss.rows_in += tb.rows;
      ss.rows_out += tb.sel.size();
      ++ss.batches;
    }
    bool ok = ctx_.interrupt.ok();
    if (ok && !tb.sel.empty()) {
      ok = d + 1 == plan_.steps.size() ? sink_(tb) : Feed(d + 1, tb);
    }
    tb.Clear();
    // Work continuing after this flush (a mid-enumeration flush returns to
    // step d's enumeration loop) belongs to step d again.
    if (steps_ != nullptr) Attribute(static_cast<int>(d));
    return ok;
  }

  // Lazily sizes the dictionary verdict memo for a single-column filter.
  ExecContext::DictMemo& MemoFor(const CompiledExpr& f, const Table& t,
                                 size_t col) {
    ExecContext::DictMemo& memo = ctx_.dict_memos[&f];
    if (!memo.decided) {
      memo.decided = true;
      const size_t dict_n = t.dict_size(col);
      // Memoizing pays once values repeat; a near-unique column (Dewey
      // positions, text payloads) would fund the verdict array for nothing.
      memo.use_memo = dict_n * 4 <= t.row_count() * 3;
      if (memo.use_memo && ChargeMem(ctx_, dict_n + 64, "filter dict memo")) {
        memo.verdict.assign(dict_n, -1);
      } else {
        memo.use_memo = false;
      }
    }
    return memo;
  }

  // Runs the step's residual filters over the batch, compacting the
  // selection vector in place. Filters short-circuit per tuple exactly like
  // the row-at-a-time path: a tuple rejected by filter k never evaluates
  // filter k+1 (EXISTS side effects and stats stay identical).
  void ApplyFilters(size_t d, TupleBatch& tb) {
    const AccessStep& step = plan_.steps[d];
    std::vector<uint32_t>& sel = tb.sel;
    sel.resize(tb.rows);
    for (uint32_t i = 0; i < tb.rows; ++i) sel[i] = i;
    for (size_t fi = 0; fi < step.cfilters.size(); ++fi) {
      if (sel.empty()) break;
      const CompiledExpr& f = *step.cfilters[fi];
      const AccessStep::FilterInfo& info = step.cfilter_info[fi];
      if (steps_ != nullptr && info.has_exists) {
        steps_[d].exists_evals += sel.size();
      }
      size_t out = 0;
      if (info.single_slot >= 0) {
        const AccessStep& owner =
            plan_.steps[static_cast<size_t>(info.owner_step)];
        const Table& t = *owner.table;
        const size_t col = static_cast<size_t>(info.owner_col);
        const std::vector<RowId>& rid_col =
            tb.cols[static_cast<size_t>(info.owner_step)];
        const size_t slot = static_cast<size_t>(info.single_slot);
        ExecContext::DictMemo& memo = MemoFor(f, t, col);
        if (memo.use_memo) {
          for (uint32_t pos : sel) {
            const uint32_t code = t.code(rid_col[pos], col);
            int8_t v = memo.verdict[code];
            if (v < 0) {
              b_[slot] = &t.dict_value(col, code);
              v = TruthOf(EvalExpr(f, b_, ctx_)) == Truth::kTrue ? 1 : 0;
              memo.verdict[code] = v;
            }
            if (v != 0) sel[out++] = pos;
          }
        } else {
          for (uint32_t pos : sel) {
            b_[slot] = &t.at(rid_col[pos], col);
            if (TruthOf(EvalExpr(f, b_, ctx_)) == Truth::kTrue) {
              sel[out++] = pos;
            }
          }
        }
        // The owner step's slot now points at a filter operand, not at the
        // row the delta-binding cache claims: force a rebind.
        last_bound_[static_cast<size_t>(info.owner_step)] = kNoRowBound;
      } else {
        for (uint32_t pos : sel) {
          if (!ctx_.interrupt.ok()) break;
          BindTuple(d, tb, pos);
          if (TruthOf(EvalExpr(f, b_, ctx_)) == Truth::kTrue) {
            sel[out++] = pos;
          }
        }
      }
      sel.resize(out);
      if (!ctx_.interrupt.ok()) {
        sel.clear();
        return;
      }
    }
  }

  // Enumerates step d's access path for one outer tuple (already bound),
  // appending candidates that pass the step's bitmap pre-filters.
  bool EnumerateStep(size_t d, const TupleBatch& outer, uint32_t opos) {
    const AccessStep& step = plan_.steps[d];
    const Table& table = *step.table;
    QueryStats* stats = ctx_.stats;

    // Morsel restriction: at the partition step, only rows in this morsel's
    // Dewey range are enumerated (other morsels own the rest).
    const bool sharded = static_cast<int>(d) == pstep_;
    StepStats* const ss = steps_ != nullptr ? &steps_[d] : nullptr;
    auto try_candidate = [&](RowId rid) -> bool {
      if (sharded && (rid < range_.lo || rid >= range_.hi)) return true;
      for (const RowBitmap* bm : step.bitmap_filters) {
        if (stats != nullptr) ++stats->bitmap_prefilter_tests;
        if (ss != nullptr) ++ss->bitmap_tests;
        if (!bm->Test(rid)) return true;
        if (stats != nullptr) ++stats->bitmap_prefilter_hits;
        if (ss != nullptr) ++ss->bitmap_hits;
      }
      return Append(d, outer, opos, rid);
    };

    switch (step.path) {
      case AccessPathKind::kSeqScan: {
        const RowId scan_lo = sharded ? range_.lo : 0;
        const RowId scan_hi =
            sharded ? range_.hi : static_cast<RowId>(table.row_count());
        if (!step.bitmap_filters.empty()) {
          // Word-skip scan: AND the bitmap words and jump set bit to set
          // bit, so a selective pre-filter costs one load per 64 rows. The
          // morsel range clamps to whole words; edge words are masked.
          const size_t w_lo = scan_lo >> 6;
          const size_t w_hi = (static_cast<size_t>(scan_hi) + 63) / 64;
          if (stats != nullptr) stats->bitmap_prefilter_tests += scan_hi - scan_lo;
          if (ss != nullptr) ss->bitmap_tests += scan_hi - scan_lo;
          for (size_t w = w_lo; w < w_hi; ++w) {
            uint64_t bits = step.bitmap_filters[0]->words[w];
            for (size_t k = 1; k < step.bitmap_filters.size(); ++k) {
              bits &= step.bitmap_filters[k]->words[w];
            }
            if (w == w_lo && (scan_lo & 63u) != 0) {
              bits &= ~0ull << (scan_lo & 63u);
            }
            if (w == w_hi - 1 && (scan_hi & 63u) != 0) {
              bits &= ~(~0ull << (scan_hi & 63u));
            }
            while (bits != 0) {
              const RowId rid =
                  static_cast<RowId>((w << 6) + std::countr_zero(bits));
              bits &= bits - 1;
              if (stats != nullptr) ++stats->bitmap_prefilter_hits;
              if (ss != nullptr) ++ss->bitmap_hits;
              if (!Append(d, outer, opos, rid)) return false;
            }
          }
          return true;
        }
        for (RowId rid = scan_lo; rid < scan_hi; ++rid) {
          if (!Append(d, outer, opos, rid)) return false;
        }
        return true;
      }
      case AccessPathKind::kIndexPoint: {
        KeyBufs kb(ctx_);
        std::string& lo = kb.lo();
        lo.clear();
        for (size_t k = 0; k < step.cpoint_keys.size(); ++k) {
          Value t0, t1;
          const Value& v =
              CoerceRef(EvalRef(*step.cpoint_keys[k], b_, ctx_, t0),
                        step.point_key_types[k], t1);
          if (v.is_null()) return true;  // NULL key matches nothing
          AppendEncodedValue(v, lo);
        }
        if (stats != nullptr) ++stats->index_probes;
        if (ss != nullptr) ++ss->index_probes;
        std::string& hi = kb.hi();
        hi.assign(lo);
        BumpToPrefixUpperBound(hi);
        for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
          if (!try_candidate(it.row())) return false;
        }
        return true;
      }
      case AccessPathKind::kIndexRange: {
        KeyBufs kb(ctx_);
        std::string& lo = kb.lo();
        lo.clear();
        if (step.crange_lo != nullptr) {
          Value t0, t1;
          const Value& v = CoerceRef(EvalRef(*step.crange_lo, b_, ctx_, t0),
                                     step.range_type, t1);
          if (v.is_null()) return true;
          AppendEncodedValue(v, lo);
          if (!step.range_lo_inclusive) BumpToPrefixUpperBound(lo);
        }
        if (stats != nullptr) ++stats->index_probes;
        if (ss != nullptr) ++ss->index_probes;
        if (step.crange_hi != nullptr) {
          Value t0, t1;
          const Value& v = CoerceRef(EvalRef(*step.crange_hi, b_, ctx_, t0),
                                     step.range_type, t1);
          if (v.is_null()) return true;
          std::string& hi = kb.hi();
          hi.clear();
          AppendEncodedValue(v, hi);
          if (step.range_hi_inclusive) BumpToPrefixUpperBound(hi);
          for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
            if (!try_candidate(it.row())) return false;
          }
        } else {
          for (auto it = step.index->ScanFrom(lo); it.Valid(); it.Next()) {
            if (!try_candidate(it.row())) return false;
          }
        }
        return true;
      }
      case AccessPathKind::kPrefixProbe: {
        Value t0;
        const Value& v = EvalRef(*step.cprobe_value, b_, ctx_, t0);
        if (v.is_null() || !IsStringLike(v)) return true;
        const std::string& dkey = v.AsStringLike();
        KeyBufs kb(ctx_);
        std::string& lo = kb.lo();
        std::string& hi = kb.hi();
        for (size_t len = 3; len <= dkey.size(); len += 3) {
          if (stats != nullptr) ++stats->index_probes;
          if (ss != nullptr) ++ss->index_probes;
          lo.clear();
          AppendEncodedBytes(std::string_view(dkey.data(), len), lo);
          hi.assign(lo);
          BumpToPrefixUpperBound(hi);
          for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
            if (!try_candidate(it.row())) return false;
          }
        }
        return true;
      }
      case AccessPathKind::kIndexUnion: {
        std::set<RowId> rows;
        KeyBufs kb(ctx_);
        std::string& lo = kb.lo();
        std::string& hi = kb.hi();
        for (const AccessStep::UnionProbe& p : step.union_probes) {
          Value t0, t1;
          const Value& v =
              CoerceRef(EvalRef(*p.ckey, b_, ctx_, t0), p.key_type, t1);
          if (v.is_null()) continue;
          if (stats != nullptr) ++stats->index_probes;
          if (ss != nullptr) ++ss->index_probes;
          lo.clear();
          AppendEncodedValue(v, lo);
          hi.assign(lo);
          BumpToPrefixUpperBound(hi);
          for (auto it = p.index->Scan(lo, hi); it.Valid(); it.Next()) {
            rows.insert(it.row());
          }
        }
        for (RowId rid : rows) {
          if (!try_candidate(rid)) return false;
        }
        return true;
      }
      case AccessPathKind::kHashProbe: {
        ExecContext::HashTable* ht = GetHashTable(step, ctx_);
        if (ht == nullptr) return false;
        Value t0;
        const Value& raw = EvalRef(*step.chash_key, b_, ctx_, t0);
        if (raw.is_null()) return true;  // NULL key matches nothing
        // A numeric probe against a text column compares by parsing each
        // row's text; no single encoded key represents that, so fall back
        // to the full scan — cfilters re-check the join conjunct.
        if ((step.hash_key_type == ValueType::kString ||
             step.hash_key_type == ValueType::kBytes) &&
            !IsStringLike(raw)) {
          const RowId scan_lo = sharded ? range_.lo : 0;
          const RowId scan_hi =
              sharded ? range_.hi : static_cast<RowId>(table.row_count());
          for (RowId rid = scan_lo; rid < scan_hi; ++rid) {
            if (!try_candidate(rid)) return false;
          }
          return true;
        }
        Value t1;
        const Value& key = CoerceRef(raw, step.hash_key_type, t1);
        if (key.is_null()) return true;
        if (stats != nullptr) ++stats->hash_join_probes;
        if (ss != nullptr) ++ss->hash_probes;
        KeyBufs kb(ctx_);
        std::string& kbuf = kb.lo();
        kbuf.clear();
        AppendEncodedValue(key, kbuf);
        auto it = ht->map.find(kbuf);
        if (it == ht->map.end()) return true;
        const std::vector<RowId>& rids = it->second;
        // Per-key row-id lists are ascending (build order), so the morsel
        // range restriction is two binary searches, not a full filter pass.
        auto first = rids.begin(), last = rids.end();
        if (sharded) {
          first = std::lower_bound(rids.begin(), rids.end(), range_.lo);
          last = std::lower_bound(first, rids.end(), range_.hi);
        }
        for (auto rit = first; rit != last; ++rit) {
          if (!try_candidate(*rit)) return false;
        }
        return true;
      }
      case AccessPathKind::kMergeJoin:
        break;  // handled by CollectMerge/SweepMerge, never reached
    }
    return true;
  }

  // Accumulates one batch of merge-join outer tuples (keys evaluated while
  // the binding is live); the sweep runs once, after all outers are in.
  bool CollectMerge(size_t d, const TupleBatch& outer) {
    const AccessStep& step = plan_.steps[d];
    MergeState& ms = merge_[d];
    const bool ancestor = step.merge_mode == MergeJoinMode::kAncestor;
    size_t bytes = 0;
    for (uint32_t pos : outer.sel) {
      if (!ctx_.interrupt.ok()) return false;
      BindOuter(d, outer, pos);
      OuterTuple t;
      if (ancestor) {
        Value t0;
        const Value& v = EvalRef(*step.cprobe_value, b_, ctx_, t0);
        // A NULL or non-text key satisfies no prefix conjunct: drop it.
        if (v.is_null() || !IsStringLike(v)) continue;
        t.key.assign(v.AsStringLike());
      } else {
        if (step.crange_lo != nullptr) {
          t.lo = CoerceForColumn(EvalExpr(*step.crange_lo, b_, ctx_),
                                 step.range_type);
          if (t.lo.is_null()) continue;  // unknown bound: no matches
        }
        if (step.crange_hi != nullptr) {
          t.hi = CoerceForColumn(EvalExpr(*step.crange_hi, b_, ctx_),
                                 step.range_type);
          if (t.hi.is_null()) continue;
        }
      }
      t.rids.reserve(d);
      for (size_t s = 0; s < d; ++s) t.rids.push_back(outer.cols[s][pos]);
      bytes += sizeof(OuterTuple) + t.key.size() + d * sizeof(RowId);
      ms.outers.push_back(std::move(t));
    }
    return ChargeMem(ctx_, bytes, "merge join outer batch");
  }

  // Sweeps the pre-sorted inner rows against the collected outers in one
  // synchronized pass. kAncestor mode keeps a stack of inner runs forming a
  // prefix chain of the current (ascending) outer key; kRange mode keeps a
  // monotone start frontier. Both only skip inner rows that provably cannot
  // satisfy the join conjuncts — which stay in the step's cfilters and are
  // re-checked per match, so the sweep may over-approximate freely.
  bool SweepMerge(size_t d) {
    const AccessStep& step = plan_.steps[d];
    if (steps_ != nullptr) {
      Attribute(static_cast<int>(d));
      ++steps_[d].merge_rounds;
    }
    if (!FaultOk(ctx_, "rel.merge_collect")) return false;
    if (ctx_.stats != nullptr) ++ctx_.stats->merge_join_rounds;
    std::vector<OuterTuple>& outers = merge_[d].outers;
    if (outers.empty()) return true;
    const bool ancestor = step.merge_mode == MergeJoinMode::kAncestor;

    if (ancestor) {
      std::sort(outers.begin(), outers.end(),
                [](const OuterTuple& a, const OuterTuple& b) {
                  return a.key < b.key;
                });
    } else if (step.crange_lo != nullptr) {
      std::sort(outers.begin(), outers.end(),
                [](const OuterTuple& a, const OuterTuple& b) {
                  auto c = CompareValues(a.lo, b.lo);
                  return c.has_value() && *c < 0;
                });
    }

    const std::vector<RowId>& inner = step.merge_order;
    auto inner_val = [&](size_t idx) -> const Value& {
      return step.table->at(inner[idx],
                            static_cast<size_t>(step.merge_column));
    };
    // Appends one (outer, inner-match) tuple at depth d; residual cfilters
    // run at flush like any other step. When the merge step is itself the
    // partition step, each morsel runs the full sweep but emits only inner
    // rows in its Dewey range (the sweep is cheap relative to downstream
    // filter/emit work, which this divides).
    const bool sharded = static_cast<int>(d) == pstep_;
    auto emit_match = [&](const OuterTuple& t, size_t inner_idx) -> bool {
      if (sharded && (inner[inner_idx] < range_.lo ||
                      inner[inner_idx] >= range_.hi)) {
        return true;
      }
      TupleBatch& tb = stage_[d];
      for (size_t s = 0; s < d; ++s) tb.cols[s].push_back(t.rids[s]);
      tb.cols[d].push_back(inner[inner_idx]);
      if (++tb.rows < cap_) return true;
      return Flush(d);
    };

    if (ancestor) {
      // Inner rows sorted ascending; outer keys ascending. Maintain a stack
      // of runs of equal inner values, each a (not necessarily proper)
      // prefix of the current outer key — the candidate ancestors. Once an
      // inner value stops being a prefix of the (ever-growing) outer key it
      // can never be a prefix again, so each run is pushed and popped at
      // most once: O(outer + inner) total.
      struct InnerRun {
        size_t begin, end;  // [begin, end) in `inner`, all equal values
      };
      std::vector<InnerRun> stack;
      size_t pos = 0;
      for (const OuterTuple& t : outers) {
        if (Interrupted(ctx_)) return false;
        std::string_view k = t.key;
        while (!stack.empty()) {
          std::string_view s = inner_val(stack.back().begin).AsStringLike();
          if (s.size() <= k.size() && k.compare(0, s.size(), s) == 0) break;
          stack.pop_back();
        }
        while (pos < inner.size()) {
          const Value& v = inner_val(pos);
          if (v.is_null() || !IsStringLike(v)) {
            ++pos;  // cannot be anyone's prefix
            continue;
          }
          std::string_view s = v.AsStringLike();
          if (s > k) break;
          size_t end = pos + 1;
          while (end < inner.size()) {
            const Value& w = inner_val(end);
            if (w.is_null() || !IsStringLike(w) || w.AsStringLike() != s) {
              break;
            }
            ++end;
          }
          if (s.size() <= k.size() && k.compare(0, s.size(), s) == 0) {
            stack.push_back({pos, end});
          }
          pos = end;
        }
        for (const InnerRun& r : stack) {
          for (size_t j = r.begin; j < r.end; ++j) {
            if (!emit_match(t, j)) return false;
          }
        }
      }
      return true;
    }

    // Range mode: outers sorted by lower bound; a start frontier advances
    // past inner rows below every later bound too (staircase skipping),
    // then each tuple scans forward until its upper bound cuts off.
    const bool has_lo = step.crange_lo != nullptr;
    const bool has_hi = step.crange_hi != nullptr;
    size_t start = 0;
    for (const OuterTuple& t : outers) {
      if (Interrupted(ctx_)) return false;
      if (has_lo) {
        while (start < inner.size()) {
          const Value& v = inner_val(start);
          if (!v.is_null() && v.type() == step.range_type) {
            auto c = CompareValues(v, t.lo);
            if (c.has_value() &&
                (step.range_lo_inclusive ? *c >= 0 : *c > 0)) {
              break;
            }
          }
          ++start;
        }
      }
      for (size_t j = start; j < inner.size(); ++j) {
        const Value& v = inner_val(j);
        // Foreign-type rows sort outside the column type's key region; they
        // match nothing (same contract as an index range scan).
        if (v.is_null() || v.type() != step.range_type) continue;
        if (has_hi) {
          auto c = CompareValues(v, t.hi);
          if (!c.has_value()) continue;
          if (*c > 0 || (*c == 0 && !step.range_hi_inclusive)) break;
        }
        if (!emit_match(t, j)) return false;
      }
    }
    return true;
  }

  const Plan& plan_;
  Binding& b_;
  ExecContext& ctx_;
  std::function<bool(const TupleBatch&)> sink_;
  const uint32_t cap_;
  const int pstep_;                   // partition step index, -1 = whole plan
  const MorselRange range_;           // this morsel's rows at pstep_
  // Per-depth: whether the step's table has tombstones (cached so Append
  // pays the bitmap test only on mutated tables).
  std::vector<char> dead_rows_;
  std::vector<TupleBatch> stage_;     // stage_[d]: depth-d accumulator
  std::vector<RowId> last_bound_;     // delta-binding cache, per step
  std::vector<MergeState> merge_;     // merge_[d]: collected outers

  // Per-step actuals sink (null = untraced run, zero added work) and the
  // phase clock behind Attribute().
  StepStats* const steps_ = nullptr;
  int cur_step_ = -1;
  uint64_t phase_start_us_ = 0;
};

// Number of rows per EXISTS batch. Small on purpose: first-witness semantics
// mean most batches stop after the first flush, and 64 rows per flush keeps
// the interruption-probe cadence of the old row-at-a-time scan (one real
// control check every 64 candidate rows).
constexpr uint32_t kExistsBatchRows = 64;

// Evaluates EXISTS for `subplan` in the shared binding. The binding spans
// the subplan's layout (which extends the outer layout), so the outer
// binding is read in place — no per-evaluation row copy. Subplan steps bind
// only their own slots (beyond the caller's), so the caller's binding is
// intact on return.
//
// Runs batch-at-a-time through the same vectorized driver as top-level
// plans (dict-memoized filters, merge-join sweeps), with a 64-row batch so
// the first flush that produces a survivor ends the run.
bool ExecExists(const Plan& subplan, Binding& b, ExecContext& ctx) {
  // Filters that involve only outer aliases.
  for (const CompiledExpr* f : subplan.compiled_post_filters) {
    if (TruthOf(EvalExpr(*f, b, ctx)) != Truth::kTrue) return false;
  }
  bool found = false;
  BatchDriver driver(
      subplan, b, ctx,
      [&found](const TupleBatch&) {
        found = true;
        return false;  // first witness: stop the run
      },
      /*partition_step=*/-1, MorselRange{}, kExistsBatchRows);
  driver.Run();
  return found && ctx.interrupt.ok();
}

// Folds the counters of a nested (build-plan) run into the outer stats.
// ExecutePlan overwrites output_rows, so nested runs always use local stats.
// Thin null-tolerant shim over QueryStats::MergeFrom — the merge semantics
// themselves live in one place (query.h / the member below).
void MergeStats(const QueryStats& local, QueryStats* out) {
  if (out != nullptr) out->MergeFrom(local);
}

// Loads the semi-join key set from the build plan's result rows, applying
// each key's strip rule (see Plan::SemiJoinKey). Rows whose key value is
// NULL, of a foreign type, or structurally unable to satisfy the original
// conjuncts (e.g. a stripped byte of 0xFF, which would violate the
// `< prefix || 0xFF` upper bound) contribute no key.
void LoadSemiKeys(const Plan& sub, const QueryResult& built,
                  ExecContext::SemiSet& set, ExecContext& ctx) {
  const std::vector<Plan::SemiJoinKey>& keys = sub.semijoin_keys;
  std::vector<std::string> parts(keys.size());
  for (const Row& row : built.rows) {
    if (!ctx.interrupt.ok()) return;
    int var_idx = -1;
    std::string_view var_payload;
    bool ok = true;
    for (size_t i = 0; i < keys.size(); ++i) {
      const Plan::SemiJoinKey& k = keys[i];
      const Value& v = row[static_cast<size_t>(k.select_pos)];
      parts[i].clear();
      if (v.is_null() || v.type() != k.inner_type) {
        ok = false;
        break;
      }
      if (k.inner_type == ValueType::kInt64) {
        AppendEncodedValue(v, parts[i]);
        continue;
      }
      std::string_view p = v.AsStringLike();
      if (k.strip_outer || k.strip_suffix == 0) {
        // Exact key, or the outer value is stripped at probe time instead.
        AppendEncodedBytes(p, parts[i]);
      } else if (k.strip_suffix > 0) {
        // The inner value extends the outer key by exactly `strip_suffix`
        // bytes; the unique candidate outer key is the inner value minus
        // that tail (invalid if the first stripped byte is 0xFF: the inner
        // value would sit at or above `key || 0xFF`).
        size_t s = static_cast<size_t>(k.strip_suffix);
        if (p.size() < s ||
            static_cast<unsigned char>(p[p.size() - s]) == 0xFF) {
          ok = false;
          break;
        }
        AppendEncodedBytes(p.substr(0, p.size() - s), parts[i]);
      } else {
        // Variable depth (descendant): one key per proper prefix, emitted
        // below so the other parts are encoded first.
        var_idx = static_cast<int>(i);
        var_payload = p;
      }
    }
    if (!ok) continue;
    if (var_idx < 0) {
      std::string key;
      for (const std::string& part : parts) key += part;
      if (!ChargeMem(ctx, key.size() + 64, "EXISTS semi-join set")) return;
      set.keys.insert(std::move(key));
      continue;
    }
    for (size_t len = 0; len < var_payload.size(); ++len) {
      // `key > prefix AND key < prefix || 0xFF` holds exactly for proper
      // prefixes whose following byte is not 0xFF.
      if (static_cast<unsigned char>(var_payload[len]) == 0xFF) continue;
      std::string key;
      for (size_t i = 0; i < parts.size(); ++i) {
        if (static_cast<int>(i) == var_idx) {
          AppendEncodedBytes(var_payload.substr(0, len), key);
        } else {
          key += parts[i];
        }
      }
      if (!ChargeMem(ctx, key.size() + 64, "EXISTS semi-join set")) return;
      set.keys.insert(std::move(key));
    }
  }
}

// Shared-mode decorrelated EXISTS: the key set is a query-level artifact,
// built once under the plan-wide lock by the first morsel to probe it.
// Returns nullptr with ctx.interrupt armed when the build failed (hard
// errors only — benign key-mapping fallbacks never reach here). `built_now`
// reports whether this probe paid for the build, so the caller counts one
// cache miss exactly like the serial first probe.
const ExecContext::SemiSet* EnsureSharedSemiSet(const Plan& sub,
                                                ExecContext& ctx,
                                                bool* built_now) {
  *built_now = false;
  auto cached = ctx.semi_view.find(&sub);
  if (cached != ctx.semi_view.end()) return cached->second;
  SharedPlanState& sh = *ctx.shared;
  std::lock_guard<std::mutex> lock(sh.mu);
  ExecContext::SemiSet& set = sh.semi_sets[&sub];
  if (!set.built && !set.failed) {
    if (!FaultOk(ctx, "rel.semijoin_build")) {
      set.failed = true;
      set.error = ctx.interrupt;
    } else {
      QueryStats local;
      auto r = ExecutePlan(*sub.semijoin_plan, &local,
                           /*need_ordered_rows=*/false, ctx.control);
      MergeStats(local, ctx.stats);
      if (!r.ok()) {
        if (ctx.interrupt.ok()) ctx.interrupt = r.status();
        set.failed = true;
        set.error = r.status();
      } else {
        set.built = true;
        ctx.charge_shared = true;  // the key set outlives this morsel
        LoadSemiKeys(sub, r.value(), set, ctx);
        ctx.charge_shared = false;
        if (!ctx.interrupt.ok()) {
          set.keys.clear();
          set.failed = true;
          set.error = ctx.interrupt;
        } else {
          *built_now = true;
          if (ctx.stats != nullptr) ++ctx.stats->exists_semijoin_builds;
        }
      }
    }
  }
  if (set.failed) {
    if (ctx.interrupt.ok()) {
      ctx.interrupt = set.error.ok()
                          ? Status::Cancelled("sibling morsel aborted")
                          : set.error;
    }
    return nullptr;
  }
  // Node-stable map: the pointer stays valid for the whole execution, so
  // later probes from this morsel skip the lock entirely.
  ctx.semi_view[&sub] = &set;
  return &set;
}

std::optional<bool> ProbeSemiJoin(const Plan& sub, Binding& b,
                                  ExecContext& ctx) {
  const bool use_shared = ctx.shared != nullptr;
  ExecContext::SemiSet* local_set = nullptr;
  if (!use_shared) {
    local_set = &ctx.semi_sets[&sub];
    if (local_set->failed) return std::nullopt;
  }
  auto definite = [&](bool v) -> std::optional<bool> {
    // Answered from the probe key alone (no subplan run): a cache hit.
    if (ctx.stats != nullptr) ++ctx.stats->exists_cache_hits;
    return v;
  };
  KeyBufs kb(ctx);
  std::string& key = kb.lo();
  key.clear();
  for (const Plan::SemiJoinKey& k : sub.semijoin_keys) {
    Value t0;
    const Value& o = EvalRef(*k.outer, b, ctx, t0);
    if (o.is_null()) return definite(false);  // NULL key: conjunct unknown
    if (k.inner_type == ValueType::kInt64) {
      if (o.type() == ValueType::kInt64) {
        AppendEncodedValue(o, key);
        continue;
      }
      auto n = o.ToNumber();
      if (!n) return definite(false);  // unparseable text: unknown
      // Near the int64 boundary double conversion rounds; CompareValues
      // might call them equal where the encoded key will not. Fall back.
      if (*n <= -9.0e18 || *n >= 9.0e18) return std::nullopt;
      int64_t x = static_cast<int64_t>(*n);
      if (static_cast<double>(x) != *n) return definite(false);  // fractional
      AppendEncodedValue(Value::Int(x), key);
      continue;
    }
    // String-like inner column. A numeric probe would compare by parsing
    // each inner value's text — not representable as one key. Fall back.
    if (!IsStringLike(o)) return std::nullopt;
    std::string_view p = o.AsStringLike();
    if (k.strip_outer) {
      size_t s = static_cast<size_t>(k.strip_suffix);
      if (p.size() < s) return definite(false);  // too short to extend a key
      if (s > 0 && static_cast<unsigned char>(p[p.size() - s]) == 0xFF) {
        return definite(false);  // would violate the prefix upper bound
      }
      AppendEncodedBytes(p.substr(0, p.size() - s), key);
    } else {
      AppendEncodedBytes(p, key);
    }
  }
  if (use_shared) {
    bool built_now = false;
    const ExecContext::SemiSet* ss = EnsureSharedSemiSet(sub, ctx, &built_now);
    if (ss == nullptr) return std::nullopt;  // interrupt armed
    if (ctx.stats != nullptr) {
      if (built_now) {
        ++ctx.stats->exists_cache_misses;
      } else {
        ++ctx.stats->exists_cache_hits;
      }
    }
    return ss->keys.count(key) > 0;
  }
  ExecContext::SemiSet& set = *local_set;
  if (!set.built) {
    if (!FaultOk(ctx, "rel.semijoin_build")) {
      set.failed = true;
      return std::nullopt;
    }
    QueryStats local;
    auto r = ExecutePlan(*sub.semijoin_plan, &local,
                         /*need_ordered_rows=*/false, ctx.control);
    MergeStats(local, ctx.stats);
    if (!r.ok()) {
      // A build cut short by cancellation, a deadline, a refused memory
      // reservation or an injected fault must stop the outer execution too
      // — silently falling back to the per-row subplan path would evade the
      // very limit that fired. `failed` keeps only the benign fallback for
      // key-mapping mismatches (the nullopt returns above).
      if (ctx.interrupt.ok()) ctx.interrupt = r.status();
      set.failed = true;
      return std::nullopt;
    }
    set.built = true;
    LoadSemiKeys(sub, r.value(), set, ctx);
    if (!ctx.interrupt.ok()) {
      // The key set is incomplete: poison it so it is never probed.
      set.keys.clear();
      set.failed = true;
      return std::nullopt;
    }
    if (ctx.stats != nullptr) {
      ++ctx.stats->exists_cache_misses;
      ++ctx.stats->exists_semijoin_builds;
    }
    return set.keys.count(key) > 0;
  }
  if (ctx.stats != nullptr) ++ctx.stats->exists_cache_hits;
  return set.keys.count(key) > 0;
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------

uint32_t EffectiveBatchSize(const ExecControl* control) {
  uint32_t bs = control != nullptr ? control->batch_size : 0;
  if (bs == 0) bs = kDefaultBatchSize;
  return std::clamp<uint32_t>(bs, 1, 65536);
}

// Returns every flushed reservation when the execution ends (all charged
// state is per-execution) and records the budget high-water mark — on the
// success and error paths alike.
struct BudgetLease {
  ExecContext& ctx;
  ~BudgetLease() {
    if (ctx.budget == nullptr) return;
    if (ctx.mem_reserved > 0) ctx.budget->Release(ctx.mem_reserved);
    if (ctx.stats != nullptr) {
      ctx.stats->bytes_reserved_peak =
          std::max(ctx.stats->bytes_reserved_peak, ctx.budget->peak());
    }
  }
};

// How one SELECT item is produced from a surviving batch. Plain column
// references — the translators' entire output — copy straight out of
// columnar storage without touching the binding; anything else evaluates
// through the bound tuple.
struct SelectSrc {
  enum class Kind { kColumn, kLiteral, kEval };
  Kind kind = Kind::kEval;
  size_t step = 0;
  size_t col = 0;
  const CompiledExpr* expr = nullptr;
};

std::vector<SelectSrc> ComputeSelectSrcs(const Plan& plan) {
  std::vector<SelectSrc> srcs(plan.compiled_select.size());
  for (size_t i = 0; i < srcs.size(); ++i) {
    const CompiledExpr* ce = plan.compiled_select[i];
    srcs[i].expr = ce;
    if (ce->kind == SqlExpr::Kind::kLiteral) {
      srcs[i].kind = SelectSrc::Kind::kLiteral;
      continue;
    }
    if (ce->kind != SqlExpr::Kind::kColumn) continue;
    for (size_t s = 0; s < plan.steps.size(); ++s) {
      const AccessStep& os = plan.steps[s];
      const int ncols = static_cast<int>(os.table->schema().columns.size());
      if (ce->slot >= os.bind_offset && ce->slot < os.bind_offset + ncols) {
        srcs[i].kind = SelectSrc::Kind::kColumn;
        srcs[i].step = s;
        srcs[i].col = static_cast<size_t>(ce->slot - os.bind_offset);
        break;
      }
    }
  }
  return srcs;
}

// Streaming (chunk) execution of one plan: surviving batches are projected
// column-wise into reused scratch vectors and handed to `sink`. No Row
// materialization, no ORDER BY, no DISTINCT dedup — callers post-process —
// but the emit/distinct fault points stay in place, so failure behavior
// matches the materializing path. `stopped` reports a sink-requested stop
// (distinct from an error).
//
// A parallel run calls this once per morsel with `pstep`/`range` narrowing
// the partition step and `shared` pointing at the plan-wide build state
// (see ExecutePlanChunksParallel below); serial callers leave the defaults.
// `steps` (nullable) receives per-step actuals; it must have room for
// plan.steps.size() entries (see BatchDriver).
Status ExecutePlanChunks(const Plan& plan, const ChunkSink& sink,
                         QueryStats* stats, const ExecControl* control,
                         std::vector<std::vector<Value>>& scratch,
                         bool& stopped, int pstep = -1, MorselRange range = {},
                         SharedPlanState* shared = nullptr,
                         StepStats* steps = nullptr) {
  ExecContext ctx;
  ctx.stats = stats;
  ctx.control = control;
  ctx.budget = control != nullptr ? control->budget : nullptr;
  ctx.batch_size = EffectiveBatchSize(control);
  ctx.shared = shared;
  if (stats != nullptr) stats->batch_size = ctx.batch_size;
  BudgetLease lease{ctx};
  if (CheckControlNow(ctx)) return ctx.interrupt;

  const SelectStmt& stmt = *plan.stmt;
  Binding binding(
      static_cast<size_t>(std::max(plan.max_slots, plan.layout.total_slots)),
      &kNullValue);
  for (const CompiledExpr* f : plan.compiled_post_filters) {
    if (TruthOf(EvalExpr(*f, binding, ctx)) != Truth::kTrue) {
      return Status::Ok();
    }
  }

  const std::vector<SelectSrc> srcs = ComputeSelectSrcs(plan);
  const size_t ncols = srcs.size();
  const size_t last = plan.steps.size() - 1;
  scratch.resize(ncols);
  size_t total_rows = 0;

  BatchDriver* drv = nullptr;
  auto bsink = [&](const TupleBatch& tb) -> bool {
    if (!FaultOk(ctx, "rel.emit_row")) return false;
    // The DISTINCT obligation transfers to the chunk consumer; the fault
    // point fires per batch so its reach does not depend on the sink mode.
    if (stmt.distinct && !FaultOk(ctx, "rel.distinct")) return false;
    if (stats != nullptr) ++stats->batches_emitted;
    for (size_t c = 0; c < ncols; ++c) scratch[c].clear();
    size_t bytes = tb.sel.size() * sizeof(Row);
    for (uint32_t pos : tb.sel) {
      for (size_t c = 0; c < ncols; ++c) {
        const SelectSrc& s = srcs[c];
        switch (s.kind) {
          case SelectSrc::Kind::kColumn:
            scratch[c].push_back(
                plan.steps[s.step].table->at(tb.cols[s.step][pos], s.col));
            break;
          case SelectSrc::Kind::kLiteral:
            scratch[c].push_back(s.expr->literal);
            break;
          case SelectSrc::Kind::kEval:
            drv->BindTuple(last, tb, pos);
            scratch[c].push_back(EvalExpr(*s.expr, binding, ctx));
            break;
        }
        const Value& v = scratch[c].back();
        bytes +=
            sizeof(Value) + (IsStringLike(v) ? v.AsStringLike().size() : 0);
      }
    }
    if (!ChargeMem(ctx, bytes, "result rows")) return false;
    total_rows += tb.sel.size();
    RowChunk chunk;
    chunk.columns = scratch.data();
    chunk.column_count = ncols;
    chunk.rows = tb.sel.size();
    if (!sink(chunk)) {
      stopped = true;
      return false;
    }
    return true;
  };

  BatchDriver driver(plan, binding, ctx, bsink, pstep, range,
                     /*cap_override=*/0, steps);
  drv = &driver;
  driver.Run();
  if (!ctx.interrupt.ok()) return ctx.interrupt;
  if (stats != nullptr) stats->output_rows = total_rows;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel plan execution
// ---------------------------------------------------------------------------
//
// The plan's partition step is split into Dewey-range morsels (parallel.h);
// each morsel runs the full pipeline restricted to its range, in its own
// ExecContext with its own ExecControl copy and its own MemoryBudget child
// of the query budget, buffering its output columns. The coordinator then
// feeds the buffered chunks to the sink in morsel (Dewey) order, so the
// concatenated output is a reordering-free partition of the serial output
// for scan-partitioned plans, and a per-morsel-sorted partition for
// merge-join plans — either way the engine's final sort+unique over node
// ids makes results bit-identical to serial execution.
//
// Failure: the first morsel to fail records its status and raises the group
// abort flag; sibling morsels observe it at their next control probe and
// unwind exactly like a cancellation. The coordinator reports the recorded
// (real) status, never the sibling-abort one.
// `steps` (nullable) receives per-step actuals. Each morsel accumulates its
// own StepStats vector; the coordinator seals and merges them in morsel
// (Dewey-concatenation) order, so per-step totals are deterministic and
// rows-out sums match a serial run exactly, while min/max/mean rows per
// morsel surface the skew of the partition.
Status ExecutePlanChunksParallel(const Plan& plan, const ChunkSink& sink,
                                 QueryStats* stats,
                                 const ExecControl* control, int pstep,
                                 const std::vector<MorselRange>& ranges,
                                 int parallelism, bool& stopped,
                                 StepStats* steps = nullptr) {
  struct MorselOut {
    std::unique_ptr<MemoryBudget> budget;
    std::vector<std::vector<Value>> cols;
    size_t rows = 0;
    QueryStats stats;
    std::vector<StepStats> steps;
    Status status;
  };
  std::vector<MorselOut> outs(ranges.size());

  SharedPlanState shared;
  shared.runner = control->runner;
  shared.parallelism = parallelism;
  shared.budget = control->budget;

  std::atomic<bool> abort{false};
  std::mutex err_mu;
  Status first_error;

  auto body = [&](size_t i) {
    MorselOut& out = outs[i];
    // Morsel-level span: which thread ran this shard and how long it took.
    // Open only when the query carries a TraceContext — morsel granularity,
    // so the span mutex is touched a handful of times per query.
    ScopedSpan span(control->trace, "morsel");
    ExecControl mc = *control;
    mc.runner = nullptr;  // morsels never fan out again (no nested groups)
    mc.parallelism = 1;
    mc.group_abort = &abort;
    if (steps != nullptr) out.steps.resize(plan.steps.size());
    if (control->budget != nullptr) {
      // Sub-reservation: charges flow through to the query budget (which
      // holds the cap), but this morsel's ledger releases independently.
      out.budget =
          std::make_unique<MemoryBudget>(/*cap=*/0, control->budget);
      mc.budget = out.budget.get();
    }
    std::vector<std::vector<Value>> scratch;
    bool local_stop = false;
    ChunkSink buffer = [&out](const RowChunk& chunk) {
      out.cols.resize(chunk.column_count);
      for (size_t c = 0; c < chunk.column_count; ++c) {
        out.cols[c].insert(out.cols[c].end(), chunk.columns[c].begin(),
                           chunk.columns[c].begin() +
                               static_cast<ptrdiff_t>(chunk.rows));
      }
      out.rows += chunk.rows;
      return true;
    };
    out.status = ExecutePlanChunks(plan, buffer, &out.stats, &mc, scratch,
                                   local_stop, pstep, ranges[i], &shared,
                                   out.steps.empty() ? nullptr
                                                     : out.steps.data());
    if (control->trace != nullptr) {
      span.Annotate("rows=" + std::to_string(out.rows));
    }
    if (!out.status.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      // Record before raising the flag: any morsel that aborts *because* of
      // the flag therefore always finds a real error already recorded.
      if (first_error.ok()) first_error = out.status;
      abort.store(true, std::memory_order_relaxed);
    }
  };

  ParallelRunStats prs =
      RunMorsels(ranges.size(), parallelism, control->runner, body);

  size_t total_rows = 0;
  for (size_t m = 0; m < outs.size(); ++m) {
    MorselOut& out = outs[m];
    MergeStats(out.stats, stats);
    total_rows += out.rows;
    // Merge per-step actuals in morsel (Dewey) order. From the partition
    // step down, each morsel handled a disjoint Dewey range: counters sum
    // to the serial totals and each morsel contributes one skew sample.
    // Steps shallower than the partition step were re-enumerated in full
    // by every morsel, so their logical counters are taken from the first
    // morsel only (they are identical across morsels — anything else would
    // read as N× the serial actuals); only their wall time, which really
    // was paid per morsel, is summed.
    if (steps != nullptr && !out.steps.empty()) {
      for (size_t s = 0; s < out.steps.size(); ++s) {
        if (static_cast<int>(s) < pstep) {
          if (m == 0) {
            steps[s].MergeFrom(out.steps[s]);
          } else {
            steps[s].time_us += out.steps[s].time_us;
          }
        } else {
          out.steps[s].SealMorsel();
          steps[s].MergeFrom(out.steps[s]);
        }
      }
    }
  }
  if (stats != nullptr) {
    stats->morsels_scheduled += prs.morsels;
    stats->morsel_steals += prs.steals;
    stats->parallel_threads = std::max(stats->parallel_threads, prs.threads);
  }

  // Shared build structures (hash tables, semi-join key sets) die with
  // `shared` here; give their reservation back to the query budget.
  if (shared.budget != nullptr && shared.reserved > 0) {
    shared.budget->Release(shared.reserved);
  }

  if (!first_error.ok()) return first_error;

  for (MorselOut& out : outs) {
    if (stopped || out.rows == 0) continue;
    RowChunk chunk;
    chunk.columns = out.cols.data();
    chunk.column_count = out.cols.size();
    chunk.rows = out.rows;
    if (!sink(chunk)) stopped = true;
  }
  if (stats != nullptr) {
    stats->output_rows = total_rows;
    if (control->budget != nullptr) {
      stats->bytes_reserved_peak =
          std::max(stats->bytes_reserved_peak, control->budget->peak());
    }
  }
  return Status::Ok();
}

}  // namespace

void QueryStats::MergeFrom(const QueryStats& other) {
  rows_scanned += other.rows_scanned;
  index_probes += other.index_probes;
  subquery_evals += other.subquery_evals;
  exists_cache_hits += other.exists_cache_hits;
  exists_cache_misses += other.exists_cache_misses;
  hash_tables_built += other.hash_tables_built;
  hash_join_probes += other.hash_join_probes;
  merge_join_rounds += other.merge_join_rounds;
  bitmap_prefilter_tests += other.bitmap_prefilter_tests;
  bitmap_prefilter_hits += other.bitmap_prefilter_hits;
  exists_semijoin_builds += other.exists_semijoin_builds;
  batches_emitted += other.batches_emitted;
  morsels_scheduled += other.morsels_scheduled;
  morsel_steals += other.morsel_steals;
  output_rows += other.output_rows;
  // Maxes, not sums: nested/UNION runs share one budget (the same bytes
  // would double-count), thread fan-out is a peak, and batch_size is a
  // configuration echo.
  parallel_threads = std::max(parallel_threads, other.parallel_threads);
  batch_size = std::max(batch_size, other.batch_size);
  bytes_reserved_peak =
      std::max(bytes_reserved_peak, other.bytes_reserved_peak);
}

void StepStats::MergeFrom(const StepStats& other) {
  rows_in += other.rows_in;
  rows_out += other.rows_out;
  batches += other.batches;
  index_probes += other.index_probes;
  hash_probes += other.hash_probes;
  merge_rounds += other.merge_rounds;
  bitmap_tests += other.bitmap_tests;
  bitmap_hits += other.bitmap_hits;
  exists_evals += other.exists_evals;
  time_us += other.time_us;
  if (other.morsels > 0) {
    min_rows = morsels == 0 ? other.min_rows
                            : std::min(min_rows, other.min_rows);
    max_rows = std::max(max_rows, other.max_rows);
    morsels += other.morsels;
  }
}

Result<QueryResult> ExecutePlan(const Plan& plan, QueryStats* stats,
                                bool need_ordered_rows,
                                const ExecControl* control) {
  ExecContext ctx;
  ctx.stats = stats;
  ctx.control = control;
  ctx.budget = control != nullptr ? control->budget : nullptr;
  ctx.batch_size = EffectiveBatchSize(control);
  if (stats != nullptr) stats->batch_size = ctx.batch_size;
  BudgetLease lease{ctx};
  // Check once before touching any rows, so a request that spent its whole
  // deadline queued (or was cancelled while queued) fails immediately.
  if (CheckControlNow(ctx)) return ctx.interrupt;

  const SelectStmt& stmt = *plan.stmt;
  QueryResult result;
  result.column_labels = plan.column_labels;

  // One binding wide enough for this plan and every nested subplan.
  Binding binding(
      static_cast<size_t>(std::max(plan.max_slots, plan.layout.total_slots)),
      &kNullValue);
  // Constant conjuncts.
  for (const CompiledExpr* f : plan.compiled_post_filters) {
    if (TruthOf(EvalExpr(*f, binding, ctx)) != Truth::kTrue) {
      return result;
    }
  }

  const std::vector<SelectSrc> srcs = ComputeSelectSrcs(plan);
  const size_t last = plan.steps.size() - 1;
  const bool want_sort = need_ordered_rows && !stmt.order_by.empty();
  const bool fast_order = !want_sort || plan.order_by_mapped;
  // On the fast-order path DISTINCT dedups incrementally per batch (the
  // mapped sort is stable and runs over already-distinct rows, so the output
  // is identical to the old post-sort dedup); an unmapped sort key keeps the
  // post-sort dedup below.
  const bool inline_distinct = stmt.distinct && fast_order;

  BatchDriver* drv = nullptr;
  auto project = [&](const TupleBatch& tb, uint32_t pos, Row& out) {
    for (const SelectSrc& s : srcs) {
      switch (s.kind) {
        case SelectSrc::Kind::kColumn:
          out.push_back(
              plan.steps[s.step].table->at(tb.cols[s.step][pos], s.col));
          break;
        case SelectSrc::Kind::kLiteral:
          out.push_back(s.expr->literal);
          break;
        case SelectSrc::Kind::kEval:
          drv->BindTuple(last, tb, pos);
          out.push_back(EvalExpr(*s.expr, binding, ctx));
          break;
      }
    }
  };

  std::vector<Row> emitted;
  std::unordered_set<Row, RowHash> seen;  // inline DISTINCT dedup table
  struct Keyed {
    Row projected;
    Row sort_key;
  };
  std::vector<Keyed> keyed;  // unmapped-ORDER-BY path only

  auto sink = [&](const TupleBatch& tb) -> bool {
    if (!FaultOk(ctx, "rel.emit_row")) return false;
    if (inline_distinct && !FaultOk(ctx, "rel.distinct")) return false;
    if (stats != nullptr) ++stats->batches_emitted;
    size_t bytes = 0;
    for (uint32_t pos : tb.sel) {
      Row projected;
      projected.reserve(srcs.size());
      project(tb, pos, projected);
      bytes += ApproxRowBytes(projected);
      if (fast_order) {
        if (inline_distinct) {
          if (!seen.insert(projected).second) continue;
          bytes += ApproxRowBytes(projected);  // the dedup table's copy
        }
        emitted.push_back(std::move(projected));
      } else {
        // ORDER BY expressions that are not projected: materialize a sort
        // key alongside each projected row.
        Keyed e;
        e.projected = std::move(projected);
        e.sort_key.reserve(plan.compiled_order_by.size());
        drv->BindTuple(last, tb, pos);
        for (const CompiledExpr* ce : plan.compiled_order_by) {
          e.sort_key.push_back(EvalExpr(*ce, binding, ctx));
        }
        bytes += ApproxRowBytes(e.sort_key);
        keyed.push_back(std::move(e));
      }
    }
    return ChargeMem(ctx, bytes, "result rows");
  };

  BatchDriver driver(plan, binding, ctx, sink);
  drv = &driver;
  driver.Run();
  // Enumeration unwinds through the abort path on interruption; surface the
  // recorded status instead of a truncated (wrong) result.
  if (!ctx.interrupt.ok()) return ctx.interrupt;

  if (fast_order) {
    if (want_sort && !plan.order_by_select_positions.empty()) {
      std::stable_sort(
          emitted.begin(), emitted.end(), [&](const Row& a, const Row& b) {
            for (size_t k = 0; k < plan.order_by_select_positions.size(); ++k) {
              size_t c =
                  static_cast<size_t>(plan.order_by_select_positions[k]);
              bool asc = stmt.order_by[k].ascending;
              if (a[c] < b[c]) return asc;
              if (b[c] < a[c]) return !asc;
            }
            return false;
          });
    }
  } else {
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t k = 0; k < a.sort_key.size(); ++k) {
                         bool asc = stmt.order_by[k].ascending;
                         if (a.sort_key[k] < b.sort_key[k]) return asc;
                         if (b.sort_key[k] < a.sort_key[k]) return !asc;
                       }
                       return false;
                     });
    emitted.reserve(keyed.size());
    for (Keyed& e : keyed) emitted.push_back(std::move(e.projected));
  }

  if (stmt.distinct && !inline_distinct) {
    if (!FaultOk(ctx, "rel.distinct")) return ctx.interrupt;
    std::unordered_set<Row, RowHash> post_seen;
    post_seen.reserve(emitted.size());
    result.rows.reserve(emitted.size());
    for (Row& e : emitted) {
      if (post_seen.insert(e).second) {
        // The dedup table holds a second copy of every distinct row.
        if (!ChargeMem(ctx, ApproxRowBytes(e), "DISTINCT dedup")) {
          return ctx.interrupt;
        }
        result.rows.push_back(std::move(e));
      }
    }
  } else {
    result.rows = std::move(emitted);
  }
  if (stats != nullptr) stats->output_rows = result.rows.size();
  return result;
}

Result<QueryResult> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                                  QueryStats* stats) {
  auto plan = PlanSelect(db, stmt, nullptr);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(*plan.value(), stats);
}

Result<QueryResult> ExecutePlannedQuery(const std::vector<const Plan*>& plans,
                                        QueryStats* stats,
                                        bool need_ordered_rows,
                                        const ExecControl* control) {
  if (plans.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (plans.size() == 1) {
    return ExecutePlan(*plans[0], stats, need_ordered_rows, control);
  }
  // UNION with set semantics; rows from all blocks deduplicated, then
  // ordered by the first block's ORDER BY columns (the translators emit the
  // same ORDER BY positionally in every block). Blocks never need their own
  // sort — the combined result is ordered (or not) in one pass here.
  QueryResult combined;
  std::unordered_set<Row, RowHash> seen;
  // The cross-block dedup table charges the shared budget directly (it has
  // no ExecContext); chunked like the executor's own charges.
  MemoryBudget* budget = control != nullptr ? control->budget : nullptr;
  size_t mem_pending = 0;
  struct UnionLease {
    MemoryBudget* budget;
    size_t reserved = 0;
    ~UnionLease() {
      if (budget != nullptr && reserved > 0) budget->Release(reserved);
    }
  } lease{budget};
  for (size_t b = 0; b < plans.size(); ++b) {
    QueryStats local;
    auto r = ExecutePlan(*plans[b], &local, /*need_ordered_rows=*/false,
                         control);
    if (!r.ok()) return r.status();
    MergeStats(local, stats);
    if (b == 0) {
      combined.column_labels = r.value().column_labels;
    }
    for (Row& row : r.value().rows) {
      if (seen.insert(row).second) {
        if (budget != nullptr) {
          mem_pending += ApproxRowBytes(row);
          if (mem_pending >= kBudgetChunk) {
            XPREL_RETURN_IF_ERROR(budget->Reserve(mem_pending, "UNION dedup"));
            lease.reserved += mem_pending;
            mem_pending = 0;
          }
        }
        combined.rows.push_back(std::move(row));
      }
    }
  }
  if (stats != nullptr && budget != nullptr) {
    stats->bytes_reserved_peak =
        std::max(stats->bytes_reserved_peak, budget->peak());
  }
  const Plan& first = *plans[0];
  if (!need_ordered_rows) {
    // Caller imposes its own order downstream.
  } else if (!first.order_by_select_positions.empty()) {
    const SelectStmt& stmt = *first.stmt;
    std::sort(combined.rows.begin(), combined.rows.end(),
              [&](const Row& a, const Row& b) {
                for (size_t k = 0; k < first.order_by_select_positions.size();
                     ++k) {
                  size_t c =
                      static_cast<size_t>(first.order_by_select_positions[k]);
                  bool asc = stmt.order_by[k].ascending;
                  if (a[c] < b[c]) return asc;
                  if (b[c] < a[c]) return !asc;
                }
                return a < b;
              });
  } else if (!first.stmt->order_by.empty()) {
    // An ORDER BY whose expressions are not among the projected columns
    // cannot be mapped; fall back to a deterministic full-row sort rather
    // than silently emitting unsorted results.
    std::sort(combined.rows.begin(), combined.rows.end());
  }
  if (stats != nullptr) stats->output_rows = combined.rows.size();
  return combined;
}

int EffectiveParallelism(const ExecControl* control) {
  if (control == nullptr || control->runner == nullptr) return 1;
  int p = control->parallelism;
  if (p <= 0) p = control->runner->width();
  return std::max(1, p);
}

int PartitionStep(const Plan& plan) {
  for (size_t d = 0; d < plan.steps.size(); ++d) {
    const AccessStep& s = plan.steps[d];
    switch (s.path) {
      // Paths whose enumeration a row-id range genuinely divides: a scan
      // iterates only its range, a hash probe binary-searches its slice of
      // each (ascending) row-id list, a merge sweep shards its emissions.
      // Index probes are excluded — a B-tree walk cannot seek by row id, so
      // every morsel would repeat the full traversal.
      case AccessPathKind::kSeqScan:
      case AccessPathKind::kHashProbe:
      case AccessPathKind::kMergeJoin:
        if (s.table->row_count() >= 2 * kMorselMinRows) {
          return static_cast<int>(d);
        }
        break;
      default:
        break;
    }
  }
  return -1;
}

Status ExecutePlannedQueryChunks(const std::vector<const Plan*>& plans,
                                 const ChunkSink& sink, QueryStats* stats,
                                 const ExecControl* control, ExecTrace* trace) {
  if (plans.empty()) {
    return Status::InvalidArgument("empty query");
  }
  // The scratch columns are shared across UNION blocks, so a multi-block
  // query still reuses one set of buffers.
  std::vector<std::vector<Value>> scratch;
  bool stopped = false;
  const int parallelism = EffectiveParallelism(control);
  if (trace != nullptr) trace->blocks.clear();
  for (const Plan* p : plans) {
    QueryStats local;
    Status s;
    std::vector<MorselRange> ranges;
    int pstep = -1;
    StepStats* bsteps = nullptr;
    if (trace != nullptr) {
      trace->blocks.emplace_back(p->steps.size());
      bsteps = trace->blocks.back().data();
    }
    if (parallelism > 1) {
      pstep = PartitionStep(*p);
      if (pstep >= 0) {
        ranges = ComputeMorselRanges(
            p->steps[static_cast<size_t>(pstep)].table->row_count(),
            parallelism);
      }
    }
    if (ranges.size() > 1) {
      s = ExecutePlanChunksParallel(*p, sink, &local, control, pstep, ranges,
                                    parallelism, stopped, bsteps);
    } else {
      s = ExecutePlanChunks(*p, sink, &local, control, scratch, stopped,
                            /*pstep=*/-1, MorselRange{}, /*shared=*/nullptr,
                            bsteps);
    }
    // MergeFrom sums output_rows too, so the per-block accumulation the old
    // ad-hoc merge needed a separate line for is covered.
    MergeStats(local, stats);
    if (!s.ok()) return s;
    if (stopped) break;
  }
  return Status::Ok();
}

Result<QueryResult> ExecuteQuery(const Database& db, const SqlQuery& query,
                                 QueryStats* stats) {
  if (query.selects.empty()) {
    return Status::InvalidArgument("empty query");
  }
  std::vector<std::unique_ptr<Plan>> owned;
  std::vector<const Plan*> plans;
  owned.reserve(query.selects.size());
  for (const auto& stmt : query.selects) {
    auto plan = PlanSelect(db, *stmt, nullptr);
    if (!plan.ok()) return plan.status();
    plans.push_back(plan.value().get());
    owned.push_back(std::move(plan).value());
  }
  return ExecutePlannedQuery(plans, stats);
}

}  // namespace xprel::rel
