#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/fault_injection.h"
#include "rel/key_codec.h"
#include "rel/query.h"

namespace xprel::rel {

namespace {

// ---------------------------------------------------------------------------
// Value semantics: SQL comparison with implicit numeric coercion.
// ---------------------------------------------------------------------------

bool IsStringLike(const Value& v) {
  return v.type() == ValueType::kString || v.type() == ValueType::kBytes;
}

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt64 || v.type() == ValueType::kDouble;
}

// Three-valued comparison: nullopt = unknown (SQL NULL semantics, and also
// "string does not parse as a number" in a numeric comparison).
std::optional<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  if (IsStringLike(a) && IsStringLike(b)) {
    int c = a.AsStringLike().compare(b.AsStringLike());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    int64_t x = a.AsInt(), y = b.AsInt();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (IsNumeric(a) || IsNumeric(b)) {
    auto x = a.ToNumber();
    auto y = b.ToNumber();
    if (!x || !y) return std::nullopt;
    return *x < *y ? -1 : (*x > *y ? 1 : 0);
  }
  return std::nullopt;
}

// SQL LIKE with % and _ wildcards.
bool MatchLike(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer algorithm with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

// Truth of a boolean Value (null = unknown).
enum class Truth { kTrue, kFalse, kUnknown };

Truth TruthOf(const Value& v) {
  if (v.is_null()) return Truth::kUnknown;
  if (v.type() == ValueType::kInt64) {
    return v.AsInt() != 0 ? Truth::kTrue : Truth::kFalse;
  }
  return Truth::kFalse;
}

// ---------------------------------------------------------------------------
// Evaluation context
// ---------------------------------------------------------------------------

// The per-execution binding: slot -> pointer into table storage (or into an
// expression literal). Binding by pointer instead of copying Values is the
// single biggest per-row saving — most columns are strings (Dewey positions,
// paths, text) whose copies allocate.
using Binding = std::vector<const Value*>;

const Value kNullValue;  // shared referent for unbound slots

struct ExecContext {
  QueryStats* stats = nullptr;

  // Cooperative interruption (see ExecControl in query.h). `interrupt` is
  // sticky: once set, every enumeration loop unwinds via its abort path and
  // ExecutePlan returns it instead of a result.
  const ExecControl* control = nullptr;
  uint32_t control_tick = 0;
  Status interrupt;

  // Lazily built hash tables for kHashProbe steps, keyed by step address.
  // `built` is tracked explicitly so a build whose rows all yield non-text
  // keys (an empty table) is not re-run on every probe.
  struct HashTable {
    bool built = false;
    std::unordered_map<std::string, std::vector<RowId>> map;
  };
  std::unordered_map<const AccessStep*, HashTable> hash_tables;

  // EXISTS semi-join memo: per EXISTS node, outcome keyed by the encoded
  // tuple of correlated outer values. Correlated EXISTS — the translator's
  // main predicate vehicle — thus costs O(distinct outer keys), not
  // O(outer rows).
  std::unordered_map<const CompiledExpr*, std::unordered_map<std::string, bool>>
      exists_memo;
  std::string memo_key;  // reusable key-encoding buffer

  // Decorrelated EXISTS key sets (see Plan::semijoin_keys), built once per
  // execution per subplan by running the subplan's uncorrelated build plan.
  struct SemiSet {
    bool built = false;
    bool failed = false;  // build plan errored: always fall back
    std::unordered_set<std::string> keys;
  };
  std::unordered_map<const Plan*, SemiSet> semi_sets;

  // Memory governance (see ExecControl::budget). Charges accumulate in
  // `mem_pending` and flush to the shared budget in kBudgetChunk steps, so
  // the steady-state per-row cost is one addition, not one atomic RMW.
  // Everything flushed is tracked in `mem_reserved` and returned when the
  // execution ends (the context's transient state dies with it).
  MemoryBudget* budget = nullptr;
  size_t mem_pending = 0;
  size_t mem_reserved = 0;

  // When non-null, RunSteps records the RowId bound at each step index here.
  // The merge-join driver uses it to snapshot the outer tuple feeding the
  // merge. EXISTS subplan execution nulls it out (subplan step indexes would
  // clobber the outer plan's entries).
  std::vector<RowId>* trace = nullptr;

  // Stack of key-encoding buffer pairs handed to RunSteps frames (deque:
  // stable addresses across growth). Capacity persists across probes, so
  // steady-state probing never allocates for key bounds.
  std::deque<std::array<std::string, 2>> key_bufs;
  size_t key_buf_depth = 0;
};

// RAII lease of one (lo, hi) buffer pair from the context's pool.
class KeyBufs {
 public:
  explicit KeyBufs(ExecContext& ctx) : ctx_(ctx) {
    if (ctx_.key_buf_depth == ctx_.key_bufs.size()) ctx_.key_bufs.emplace_back();
    bufs_ = &ctx_.key_bufs[ctx_.key_buf_depth++];
  }
  ~KeyBufs() { --ctx_.key_buf_depth; }
  KeyBufs(const KeyBufs&) = delete;
  KeyBufs& operator=(const KeyBufs&) = delete;

  std::string& lo() { return (*bufs_)[0]; }
  std::string& hi() { return (*bufs_)[1]; }

 private:
  ExecContext& ctx_;
  std::array<std::string, 2>* bufs_;
};

// Budget charges flush to the shared MemoryBudget in chunks of this size;
// totals below it are never refused, which keeps tiny queries entirely off
// the atomic counters.
constexpr size_t kBudgetChunk = 64 * 1024;

// Charges `bytes` of transient execution memory. Returns false (and arms
// ctx.interrupt with ResourceExhausted) when the budget refuses, so callers
// unwind through the same abort path as a cancellation.
bool ChargeMem(ExecContext& ctx, size_t bytes, const char* what) {
  if (ctx.budget == nullptr) return true;
  ctx.mem_pending += bytes;
  if (ctx.mem_pending < kBudgetChunk) return true;
  size_t take = ctx.mem_pending;
  ctx.mem_pending = 0;
  Status s = ctx.budget->Reserve(take, what);
  if (!s.ok()) {
    if (ctx.interrupt.ok()) ctx.interrupt = std::move(s);
    return false;
  }
  ctx.mem_reserved += take;
  return true;
}

// Approximate heap residency of one materialized row (header, slots, string
// payloads). An estimate is fine: the budget bounds order-of-magnitude
// blowups, it is not an allocator.
size_t ApproxRowBytes(const Row& row) {
  size_t n = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (IsStringLike(v)) n += v.AsStringLike().size();
  }
  return n;
}

// Crosses a fault-injection point from a bool-returning enumeration frame:
// an injected error lands in ctx.interrupt and aborts like a cancellation.
bool FaultOk(ExecContext& ctx, const char* point) {
  Status s = XPREL_FAULT_POINT(point);
  if (s.ok()) return true;
  if (ctx.interrupt.ok()) ctx.interrupt = std::move(s);
  return false;
}

// Samples the cancellation flag and the deadline clock, recording the first
// trigger in ctx.interrupt. Returns true when the execution must unwind.
bool CheckControlNow(ExecContext& ctx) {
  if (!ctx.interrupt.ok()) return true;
  const ExecControl* c = ctx.control;
  if (c == nullptr) return false;
  if (c->cancel != nullptr && c->cancel->load(std::memory_order_relaxed)) {
    ctx.interrupt = Status::Cancelled("query cancelled");
    return true;
  }
  if (c->has_deadline && std::chrono::steady_clock::now() >= c->deadline) {
    ctx.interrupt = Status::DeadlineExceeded("query deadline exceeded");
    return true;
  }
  return false;
}

// Per-row interruption probe: one increment per row, a real check (atomic
// load + possibly a clock read) every check_interval rows.
inline bool Interrupted(ExecContext& ctx) {
  if (!ctx.interrupt.ok()) return true;
  if (ctx.control == nullptr) return false;
  if (++ctx.control_tick < ctx.control->check_interval) return false;
  ctx.control_tick = 0;
  return CheckControlNow(ctx);
}

Value EvalExpr(const CompiledExpr& e, Binding& b, ExecContext& ctx);

bool ExecExists(const Plan& subplan, Binding& b, ExecContext& ctx);

// Decorrelated EXISTS: answers via the build-once semi-join key set.
// nullopt = the probe value cannot be mapped onto the inner key encoding
// (e.g. a numeric probe against a text column) — caller falls back to the
// memoized per-row subplan run. Updates the EXISTS cache counters itself.
std::optional<bool> ProbeSemiJoin(const Plan& sub, Binding& b,
                                  ExecContext& ctx);

// Evaluates `e` without copying when the result already lives somewhere
// stable: columns alias table storage, literals alias the compiled plan.
// Computed results land in `tmp`, whose lifetime the caller controls.
const Value& EvalRef(const CompiledExpr& e, Binding& b, ExecContext& ctx,
                     Value& tmp) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      return *b[static_cast<size_t>(e.slot)];
    case SqlExpr::Kind::kLiteral:
      return e.literal;
    default:
      tmp = EvalExpr(e, b, ctx);
      return tmp;
  }
}

Value EvalExpr(const CompiledExpr& e, Binding& b, ExecContext& ctx) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      return *b[static_cast<size_t>(e.slot)];
    case SqlExpr::Kind::kLiteral:
      return e.literal;
    case SqlExpr::Kind::kBinary: {
      if (e.op == SqlExpr::BinOp::kAnd || e.op == SqlExpr::BinOp::kOr) {
        Value t0;
        Truth a = TruthOf(EvalRef(*e.args[0], b, ctx, t0));
        // Short-circuit.
        if (e.op == SqlExpr::BinOp::kAnd && a == Truth::kFalse) {
          return Value::Int(0);
        }
        if (e.op == SqlExpr::BinOp::kOr && a == Truth::kTrue) {
          return Value::Int(1);
        }
        Value t1;
        Truth bt = TruthOf(EvalRef(*e.args[1], b, ctx, t1));
        if (e.op == SqlExpr::BinOp::kAnd) {
          if (bt == Truth::kFalse) return Value::Int(0);
          if (a == Truth::kTrue && bt == Truth::kTrue) return Value::Int(1);
          return Value::Null();
        }
        if (bt == Truth::kTrue) return Value::Int(1);
        if (a == Truth::kFalse && bt == Truth::kFalse) return Value::Int(0);
        return Value::Null();
      }
      Value ta, tb;
      const Value& x = EvalRef(*e.args[0], b, ctx, ta);
      const Value& y = EvalRef(*e.args[1], b, ctx, tb);
      auto cmp = CompareValues(x, y);
      if (!cmp) return Value::Null();
      bool r = false;
      switch (e.op) {
        case SqlExpr::BinOp::kEq:
          r = *cmp == 0;
          break;
        case SqlExpr::BinOp::kNe:
          r = *cmp != 0;
          break;
        case SqlExpr::BinOp::kLt:
          r = *cmp < 0;
          break;
        case SqlExpr::BinOp::kLe:
          r = *cmp <= 0;
          break;
        case SqlExpr::BinOp::kGt:
          r = *cmp > 0;
          break;
        case SqlExpr::BinOp::kGe:
          r = *cmp >= 0;
          break;
        default:
          return Value::Null();
      }
      return Value::Int(r ? 1 : 0);
    }
    case SqlExpr::Kind::kNot: {
      Value t0;
      Truth t = TruthOf(EvalRef(*e.args[0], b, ctx, t0));
      if (t == Truth::kUnknown) return Value::Null();
      return Value::Int(t == Truth::kFalse ? 1 : 0);
    }
    case SqlExpr::Kind::kBetween: {
      Value t0, t1, t2;
      const Value& v = EvalRef(*e.args[0], b, ctx, t0);
      const Value& lo = EvalRef(*e.args[1], b, ctx, t1);
      const Value& hi = EvalRef(*e.args[2], b, ctx, t2);
      auto c1 = CompareValues(v, lo);
      auto c2 = CompareValues(v, hi);
      if (!c1 || !c2) return Value::Null();
      return Value::Int((*c1 >= 0 && *c2 <= 0) ? 1 : 0);
    }
    case SqlExpr::Kind::kConcat: {
      Value t0, t1;
      const Value& a = EvalRef(*e.args[0], b, ctx, t0);
      const Value& c = EvalRef(*e.args[1], b, ctx, t1);
      if (a.is_null() || c.is_null()) return Value::Null();
      auto at = a.ToText();
      auto ct = c.ToText();
      if (!at || !ct) return Value::Null();
      bool bytes = a.type() == ValueType::kBytes || c.type() == ValueType::kBytes;
      std::string s = *at + *ct;
      return bytes ? Value::Bytes(std::move(s)) : Value::Str(std::move(s));
    }
    case SqlExpr::Kind::kExists: {
      if (ctx.stats != nullptr) ++ctx.stats->subquery_evals;
      if (e.subplan->semijoin_decorrelated) {
        auto r = ProbeSemiJoin(*e.subplan, b, ctx);
        if (r.has_value()) return Value::Int(*r ? 1 : 0);
      }
      auto& memo = ctx.exists_memo[&e];
      ctx.memo_key.clear();
      for (int s : e.correlated_slots) {
        AppendEncodedValue(*b[static_cast<size_t>(s)], ctx.memo_key);
      }
      auto [it, inserted] = memo.try_emplace(ctx.memo_key, false);
      if (!inserted) {
        if (ctx.stats != nullptr) ++ctx.stats->exists_cache_hits;
        return Value::Int(it->second ? 1 : 0);
      }
      // An injected or budget-refused insert unwinds via ctx.interrupt; the
      // entry is removed so a pristine memo survives, and the Null return is
      // never consumed as a verdict (enumeration aborts on the interrupt
      // before trusting it).
      if (!FaultOk(ctx, "rel.exists_memo_insert") ||
          !ChargeMem(ctx, ctx.memo_key.size() + 64, "EXISTS memo")) {
        memo.erase(it);
        return Value::Null();
      }
      if (ctx.stats != nullptr) ++ctx.stats->exists_cache_misses;
      // Nested EXISTS nodes are distinct, so recursion touches other inner
      // maps only; references into `memo` stay valid across it.
      bool found = ExecExists(*e.subplan, b, ctx);
      if (!ctx.interrupt.ok()) {
        // The subplan was cut short: its verdict is not trustworthy, so it
        // must not be memoized (a later retry would read a wrong `false`).
        memo.erase(it);
        return Value::Null();
      }
      it->second = found;
      return Value::Int(found ? 1 : 0);
    }
    case SqlExpr::Kind::kRegexpLike: {
      Value t0;
      const Value& text = EvalRef(*e.args[0], b, ctx, t0);
      if (text.is_null()) return Value::Null();
      if (IsStringLike(text)) {
        return Value::Int(e.regex->Matches(text.AsStringLike()) ? 1 : 0);
      }
      auto t = text.ToText();
      if (!t) return Value::Null();
      return Value::Int(e.regex->Matches(*t) ? 1 : 0);
    }
    case SqlExpr::Kind::kLike: {
      Value t0, t1;
      const Value& text = EvalRef(*e.args[0], b, ctx, t0);
      const Value& pattern = EvalRef(*e.args[1], b, ctx, t1);
      if (text.is_null() || pattern.is_null()) return Value::Null();
      if (IsStringLike(text) && IsStringLike(pattern)) {
        return Value::Int(
            MatchLike(text.AsStringLike(), pattern.AsStringLike()) ? 1 : 0);
      }
      auto t = text.ToText();
      auto p = pattern.ToText();
      if (!t || !p) return Value::Null();
      return Value::Int(MatchLike(*t, *p) ? 1 : 0);
    }
    case SqlExpr::Kind::kIsNull: {
      Value t0;
      return Value::Int(EvalRef(*e.args[0], b, ctx, t0).is_null() ? 1 : 0);
    }
    case SqlExpr::Kind::kLength: {
      Value t0;
      const Value& v = EvalRef(*e.args[0], b, ctx, t0);
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kString || v.type() == ValueType::kBytes) {
        return Value::Int(static_cast<int64_t>(v.AsStringLike().size()));
      }
      auto t = v.ToText();
      if (!t) return Value::Null();
      return Value::Int(static_cast<int64_t>(t->size()));
    }
    case SqlExpr::Kind::kAdd: {
      Value t0, t1;
      const Value& a = EvalRef(*e.args[0], b, ctx, t0);
      const Value& c = EvalRef(*e.args[1], b, ctx, t1);
      if (a.type() == ValueType::kInt64 && c.type() == ValueType::kInt64) {
        return Value::Int(a.AsInt() + c.AsInt());
      }
      auto x = a.ToNumber();
      auto y = c.ToNumber();
      if (!x || !y) return Value::Null();
      return Value::Real(*x + *y);
    }
  }
  return Value::Null();
}

// Coerces `v` to the storage type of a column so encoded index keys compare
// correctly (e.g. a concatenated Dewey bound arrives as kBytes for a kBytes
// column; an int literal probes an int column). The target type is resolved
// by the planner, never re-derived per row.
Value CoerceForColumn(const Value& v, ValueType target) {
  if (v.is_null() || v.type() == target) return v;
  switch (target) {
    case ValueType::kInt64: {
      auto n = v.ToNumber();
      if (!n) return Value::Null();
      return Value::Int(static_cast<int64_t>(*n));
    }
    case ValueType::kDouble: {
      auto n = v.ToNumber();
      if (!n) return Value::Null();
      return Value::Real(*n);
    }
    case ValueType::kString: {
      auto t = v.ToText();
      if (!t) return Value::Null();
      return Value::Str(std::move(*t));
    }
    case ValueType::kBytes: {
      if (IsStringLike(v)) return Value::Bytes(v.AsStringLike());
      return Value::Null();
    }
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

// Copy-free coercion: returns `v` itself when it already has the target
// type, otherwise the coerced value parked in `tmp`.
const Value& CoerceRef(const Value& v, ValueType target, Value& tmp) {
  if (v.is_null() || v.type() == target) return v;
  tmp = CoerceForColumn(v, target);
  return tmp;
}

// ---------------------------------------------------------------------------
// Step enumeration
// ---------------------------------------------------------------------------

// Points the binding slots at table row `rid` in place (no Value copies).
void BindRow(const Table& table, RowId rid, int offset, Binding& b) {
  const Row& src = table.row(rid);
  for (size_t c = 0; c < src.size(); ++c) {
    b[static_cast<size_t>(offset) + c] = &src[c];
  }
}

// Runs steps [i..end) of the plan; calls `emit` on every binding covering
// them. `emit` returns false to abort enumeration (EXISTS short-circuit).
// Returns false if enumeration was aborted. Merge-join steps are not handled
// here — ExecSteps segments the pipeline around them.
bool RunSteps(const Plan& plan, size_t i, size_t end, Binding& b,
              ExecContext& ctx, const std::function<bool()>& emit) {
  if (i == end) return emit();
  const AccessStep& step = plan.steps[i];
  const Table& table = *step.table;

  auto try_row = [&](RowId rid) -> bool {
    if (Interrupted(ctx)) return false;
    for (const RowBitmap* bm : step.bitmap_filters) {
      if (ctx.stats != nullptr) ++ctx.stats->bitmap_prefilter_tests;
      if (!bm->Test(rid)) return true;
      if (ctx.stats != nullptr) ++ctx.stats->bitmap_prefilter_hits;
    }
    if (ctx.stats != nullptr) ++ctx.stats->rows_scanned;
    BindRow(table, rid, step.bind_offset, b);
    if (ctx.trace != nullptr) (*ctx.trace)[i] = rid;
    for (const CompiledExpr* f : step.cfilters) {
      if (TruthOf(EvalExpr(*f, b, ctx)) != Truth::kTrue) return true;
    }
    return RunSteps(plan, i + 1, end, b, ctx, emit);
  };

  switch (step.path) {
    case AccessPathKind::kSeqScan: {
      for (RowId rid = 0; rid < table.row_count(); ++rid) {
        if (!try_row(rid)) return false;
      }
      return true;
    }
    case AccessPathKind::kIndexPoint: {
      // Encode keys directly into the pooled buffer as they are evaluated;
      // key column types were resolved by the planner.
      KeyBufs kb(ctx);
      std::string& lo = kb.lo();
      lo.clear();
      for (size_t k = 0; k < step.cpoint_keys.size(); ++k) {
        Value t0, t1;
        const Value& v =
            CoerceRef(EvalRef(*step.cpoint_keys[k], b, ctx, t0),
                      step.point_key_types[k], t1);
        if (v.is_null()) return true;  // NULL key matches nothing
        AppendEncodedValue(v, lo);
      }
      if (ctx.stats != nullptr) ++ctx.stats->index_probes;
      std::string& hi = kb.hi();
      hi.assign(lo);
      BumpToPrefixUpperBound(hi);
      for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
        if (!try_row(it.row())) return false;
      }
      return true;
    }
    case AccessPathKind::kIndexRange: {
      // Bounds are on the first index column, whose type the planner stored.
      KeyBufs kb(ctx);
      std::string& lo = kb.lo();
      lo.clear();
      if (step.crange_lo != nullptr) {
        Value t0, t1;
        const Value& v = CoerceRef(EvalRef(*step.crange_lo, b, ctx, t0),
                                   step.range_type, t1);
        if (v.is_null()) return true;
        AppendEncodedValue(v, lo);
        if (!step.range_lo_inclusive) BumpToPrefixUpperBound(lo);
      }
      if (ctx.stats != nullptr) ++ctx.stats->index_probes;
      if (step.crange_hi != nullptr) {
        Value t0, t1;
        const Value& v = CoerceRef(EvalRef(*step.crange_hi, b, ctx, t0),
                                   step.range_type, t1);
        if (v.is_null()) return true;
        std::string& hi = kb.hi();
        hi.clear();
        AppendEncodedValue(v, hi);
        if (step.range_hi_inclusive) BumpToPrefixUpperBound(hi);
        for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
          if (!try_row(it.row())) return false;
        }
      } else {
        for (auto it = step.index->ScanFrom(lo); it.Valid(); it.Next()) {
          if (!try_row(it.row())) return false;
        }
      }
      return true;
    }
    case AccessPathKind::kPrefixProbe: {
      Value t0;
      const Value& v = EvalRef(*step.cprobe_value, b, ctx, t0);
      if (v.is_null() || !IsStringLike(v)) return true;
      const std::string& d = v.AsStringLike();
      // Probe each Dewey prefix (ancestors are exactly the prefixes whose
      // length is a multiple of the 3-byte component size). One pair of
      // buffers serves every probe.
      KeyBufs kb(ctx);
      std::string& lo = kb.lo();
      std::string& hi = kb.hi();
      for (size_t len = 3; len <= d.size(); len += 3) {
        if (ctx.stats != nullptr) ++ctx.stats->index_probes;
        lo.clear();
        AppendEncodedBytes(std::string_view(d.data(), len), lo);
        hi.assign(lo);
        BumpToPrefixUpperBound(hi);
        for (auto it = step.index->Scan(lo, hi); it.Valid(); it.Next()) {
          if (!try_row(it.row())) return false;
        }
      }
      return true;
    }
    case AccessPathKind::kIndexUnion: {
      std::set<RowId> rows;
      KeyBufs kb(ctx);
      std::string& lo = kb.lo();
      std::string& hi = kb.hi();
      for (const AccessStep::UnionProbe& p : step.union_probes) {
        Value t0, t1;
        const Value& v =
            CoerceRef(EvalRef(*p.ckey, b, ctx, t0), p.key_type, t1);
        if (v.is_null()) continue;
        if (ctx.stats != nullptr) ++ctx.stats->index_probes;
        lo.clear();
        AppendEncodedValue(v, lo);
        hi.assign(lo);
        BumpToPrefixUpperBound(hi);
        for (auto it = p.index->Scan(lo, hi); it.Valid(); it.Next()) {
          rows.insert(it.row());
        }
      }
      for (RowId rid : rows) {
        if (!try_row(rid)) return false;
      }
      return true;
    }
    case AccessPathKind::kHashProbe: {
      auto& ht = ctx.hash_tables[&step];
      if (!ht.built) {
        ht.built = true;
        if (!FaultOk(ctx, "rel.hash_build")) return false;
        if (ctx.stats != nullptr) ++ctx.stats->hash_tables_built;
        std::string kbuf;
        for (RowId rid = 0; rid < table.row_count(); ++rid) {
          if (Interrupted(ctx)) return false;
          const Value& v = table.row(rid)[static_cast<size_t>(step.hash_column)];
          // Values of a foreign type never land in the probed key space
          // (mirrors an index probe, which scans only the key's tag region).
          if (v.is_null() || v.type() != step.hash_key_type) continue;
          kbuf.clear();
          AppendEncodedValue(v, kbuf);
          if (!ChargeMem(ctx, kbuf.size() + sizeof(RowId) + 48,
                         "hash join build")) {
            return false;
          }
          ht.map[kbuf].push_back(rid);
        }
      }
      Value t0;
      const Value& raw = EvalRef(*step.chash_key, b, ctx, t0);
      if (raw.is_null()) return true;  // NULL key matches nothing
      // A numeric probe against a text column compares by parsing each row's
      // text (CompareValues semantics); no single encoded key represents
      // that, so fall back to the full scan — cfilters re-check the join
      // conjunct, so this is slow, never wrong.
      if ((step.hash_key_type == ValueType::kString ||
           step.hash_key_type == ValueType::kBytes) &&
          !IsStringLike(raw)) {
        for (RowId rid = 0; rid < table.row_count(); ++rid) {
          if (!try_row(rid)) return false;
        }
        return true;
      }
      Value t1;
      const Value& key = CoerceRef(raw, step.hash_key_type, t1);
      if (key.is_null()) return true;
      if (ctx.stats != nullptr) ++ctx.stats->hash_join_probes;
      KeyBufs kb(ctx);
      std::string& kbuf = kb.lo();
      kbuf.clear();
      AppendEncodedValue(key, kbuf);
      auto it = ht.map.find(kbuf);
      if (it == ht.map.end()) return true;
      for (RowId rid : it->second) {
        if (!try_row(rid)) return false;
      }
      return true;
    }
    case AccessPathKind::kMergeJoin: {
      // Reached only when the merge driver is bypassed (defensive fallback):
      // enumerate the pre-sorted inner rows; cfilters carry the original
      // join conjuncts, so this degrades to a filtered scan, not a wrong
      // answer.
      for (RowId rid : step.merge_order) {
        if (!try_row(rid)) return false;
      }
      return true;
    }
  }
  return true;
}

bool ExecSteps(const Plan& plan, size_t i, Binding& b, ExecContext& ctx,
               const std::function<bool()>& emit);

// Executes the merge-join step at index `m`: batches the outer tuples
// produced by steps [seg_begin, m), sorts them by the join key, and sweeps
// the pre-sorted inner rows in one synchronized pass. kAncestor mode keeps a
// stack of inner runs forming a prefix chain of the current (ascending)
// outer key; kRange mode keeps a monotone start frontier. Both only skip
// inner rows that provably cannot satisfy the join conjuncts — which stay in
// the step's cfilters and are re-checked per match, so the sweep may
// over-approximate freely.
bool ExecMerge(const Plan& plan, size_t seg_begin, size_t m, Binding& b,
               ExecContext& ctx, const std::function<bool()>& emit) {
  const AccessStep& step = plan.steps[m];
  if (ctx.trace == nullptr) {
    // No outer-tuple snapshotting available: degrade to the nested-loop
    // fallback (RunSteps enumerates merge_order behind cfilters).
    return RunSteps(plan, seg_begin, plan.steps.size(), b, ctx, emit);
  }
  if (!FaultOk(ctx, "rel.merge_collect")) return false;
  if (ctx.stats != nullptr) ++ctx.stats->merge_join_rounds;

  const bool ancestor = step.merge_mode == MergeJoinMode::kAncestor;
  const size_t width = m - seg_begin;

  // One outer tuple: the rows bound for the segment plus its join key,
  // evaluated at collection time (the binding is live then).
  struct OuterTuple {
    std::vector<RowId> rids;
    std::string key;  // kAncestor: the Dewey payload to find prefixes of
    Value lo, hi;     // kRange: bounds coerced to the column type
  };
  std::vector<OuterTuple> outers;

  RunSteps(plan, seg_begin, m, b, ctx, [&]() {
    OuterTuple t;
    if (ancestor) {
      Value t0;
      const Value& v = EvalRef(*step.cprobe_value, b, ctx, t0);
      // A NULL or non-text key satisfies no prefix conjunct: drop the tuple.
      if (v.is_null() || !IsStringLike(v)) return true;
      t.key.assign(v.AsStringLike());
    } else {
      if (step.crange_lo != nullptr) {
        t.lo = CoerceForColumn(EvalExpr(*step.crange_lo, b, ctx),
                               step.range_type);
        if (t.lo.is_null()) return true;  // unknown bound: no matches
      }
      if (step.crange_hi != nullptr) {
        t.hi = CoerceForColumn(EvalExpr(*step.crange_hi, b, ctx),
                               step.range_type);
        if (t.hi.is_null()) return true;
      }
    }
    t.rids.reserve(width);
    for (size_t s = seg_begin; s < m; ++s) {
      t.rids.push_back((*ctx.trace)[s]);
    }
    if (!ChargeMem(ctx,
                   sizeof(OuterTuple) + t.key.size() + width * sizeof(RowId),
                   "merge join outer batch")) {
      return false;
    }
    outers.push_back(std::move(t));
    return true;
  });
  if (!ctx.interrupt.ok()) return false;
  if (outers.empty()) return true;

  if (ancestor) {
    std::sort(outers.begin(), outers.end(),
              [](const OuterTuple& a, const OuterTuple& b) {
                return a.key < b.key;
              });
  } else if (step.crange_lo != nullptr) {
    std::sort(outers.begin(), outers.end(),
              [](const OuterTuple& a, const OuterTuple& b) {
                auto c = CompareValues(a.lo, b.lo);
                return c.has_value() && *c < 0;
              });
  }

  const std::vector<RowId>& inner = step.merge_order;
  auto inner_val = [&](size_t idx) -> const Value& {
    return step.table
        ->row(inner[idx])[static_cast<size_t>(step.merge_column)];
  };

  // Rebinds the outer segment's rows, then feeds one inner match through the
  // merge step's residual filters and on to the rest of the pipeline.
  auto process = [&](size_t inner_idx) -> bool {
    if (Interrupted(ctx)) return false;
    RowId rid = inner[inner_idx];
    if (ctx.stats != nullptr) ++ctx.stats->rows_scanned;
    BindRow(*step.table, rid, step.bind_offset, b);
    (*ctx.trace)[m] = rid;
    for (const CompiledExpr* f : step.cfilters) {
      if (TruthOf(EvalExpr(*f, b, ctx)) != Truth::kTrue) return true;
    }
    return ExecSteps(plan, m + 1, b, ctx, emit);
  };
  auto rebind_outer = [&](const OuterTuple& t) {
    for (size_t s = seg_begin; s < m; ++s) {
      const AccessStep& os = plan.steps[s];
      RowId rid = t.rids[s - seg_begin];
      BindRow(*os.table, rid, os.bind_offset, b);
      (*ctx.trace)[s] = rid;
    }
  };

  if (ancestor) {
    // Inner rows sorted ascending; outer keys ascending. Maintain a stack of
    // runs of equal inner values, each a (not necessarily proper) prefix of
    // the current outer key — these are exactly the candidate ancestors.
    // Once an inner value stops being a prefix of the (ever-growing) outer
    // key it can never be a prefix again, so each run is pushed and popped
    // at most once: O(outer + inner) total.
    struct Run {
      size_t begin, end;  // [begin, end) in `inner`, all equal values
    };
    std::vector<Run> stack;
    size_t pos = 0;
    for (const OuterTuple& t : outers) {
      if (Interrupted(ctx)) return false;
      std::string_view k = t.key;
      while (!stack.empty()) {
        std::string_view s = inner_val(stack.back().begin).AsStringLike();
        if (s.size() <= k.size() && k.compare(0, s.size(), s) == 0) break;
        stack.pop_back();
      }
      while (pos < inner.size()) {
        const Value& v = inner_val(pos);
        if (v.is_null() || !IsStringLike(v)) {
          ++pos;  // cannot be anyone's prefix
          continue;
        }
        std::string_view s = v.AsStringLike();
        if (s > k) break;
        size_t end = pos + 1;
        while (end < inner.size()) {
          const Value& w = inner_val(end);
          if (w.is_null() || !IsStringLike(w) || w.AsStringLike() != s) break;
          ++end;
        }
        if (s.size() <= k.size() && k.compare(0, s.size(), s) == 0) {
          stack.push_back({pos, end});
        }
        pos = end;
      }
      if (stack.empty()) continue;
      rebind_outer(t);
      for (const Run& r : stack) {
        for (size_t j = r.begin; j < r.end; ++j) {
          if (!process(j)) return false;
        }
      }
    }
    return true;
  }

  // Range mode: outers sorted by lower bound; a start frontier advances past
  // inner rows below every later bound too (staircase skipping), then each
  // tuple scans forward until its upper bound cuts off.
  const bool has_lo = step.crange_lo != nullptr;
  const bool has_hi = step.crange_hi != nullptr;
  size_t start = 0;
  for (const OuterTuple& t : outers) {
    if (Interrupted(ctx)) return false;
    if (has_lo) {
      while (start < inner.size()) {
        const Value& v = inner_val(start);
        if (!v.is_null() && v.type() == step.range_type) {
          auto c = CompareValues(v, t.lo);
          if (c.has_value() &&
              (step.range_lo_inclusive ? *c >= 0 : *c > 0)) {
            break;
          }
        }
        ++start;
      }
    }
    bool bound_outer = false;
    for (size_t j = start; j < inner.size(); ++j) {
      const Value& v = inner_val(j);
      // Foreign-type rows sort outside the column type's key region; they
      // match nothing (same contract as an index range scan).
      if (v.is_null() || v.type() != step.range_type) continue;
      if (has_hi) {
        auto c = CompareValues(v, t.hi);
        if (!c.has_value()) continue;
        if (*c > 0 || (*c == 0 && !step.range_hi_inclusive)) break;
      }
      if (!bound_outer) {
        rebind_outer(t);
        bound_outer = true;
      }
      if (!process(j)) return false;
    }
  }
  return true;
}

// Drives steps [i..) of the plan, segmenting the pipeline at merge-join
// steps (which batch their outer side) and running everything else through
// the row-at-a-time RunSteps.
bool ExecSteps(const Plan& plan, size_t i, Binding& b, ExecContext& ctx,
               const std::function<bool()>& emit) {
  size_t m = i;
  while (m < plan.steps.size() &&
         plan.steps[m].path != AccessPathKind::kMergeJoin) {
    ++m;
  }
  if (m == plan.steps.size()) {
    return RunSteps(plan, i, m, b, ctx, emit);
  }
  return ExecMerge(plan, i, m, b, ctx, emit);
}

// Evaluates EXISTS for `subplan` in the shared binding. The binding spans
// the subplan's layout (which extends the outer layout), so the outer
// binding is read in place — no per-evaluation row copy. Subplan steps bind
// only their own slots (beyond the caller's), so the caller's binding is
// intact on return.
bool ExecExists(const Plan& subplan, Binding& b, ExecContext& ctx) {
  // Filters that involve only outer aliases.
  for (const CompiledExpr* f : subplan.compiled_post_filters) {
    if (TruthOf(EvalExpr(*f, b, ctx)) != Truth::kTrue) return false;
  }
  // Subplan step indexes would clobber the outer plan's trace entries.
  std::vector<RowId>* saved_trace = ctx.trace;
  ctx.trace = nullptr;
  bool found = false;
  RunSteps(subplan, 0, subplan.steps.size(), b, ctx, [&]() {
    found = true;
    return false;  // abort on first witness
  });
  ctx.trace = saved_trace;
  return found;
}

// Folds the counters of a nested (build-plan) run into the outer stats.
// ExecutePlan overwrites output_rows, so nested runs always use local stats.
void MergeStats(const QueryStats& local, QueryStats* out) {
  if (out == nullptr) return;
  out->rows_scanned += local.rows_scanned;
  out->index_probes += local.index_probes;
  out->subquery_evals += local.subquery_evals;
  out->exists_cache_hits += local.exists_cache_hits;
  out->exists_cache_misses += local.exists_cache_misses;
  out->hash_tables_built += local.hash_tables_built;
  out->hash_join_probes += local.hash_join_probes;
  out->merge_join_rounds += local.merge_join_rounds;
  out->bitmap_prefilter_tests += local.bitmap_prefilter_tests;
  out->bitmap_prefilter_hits += local.bitmap_prefilter_hits;
  out->exists_semijoin_builds += local.exists_semijoin_builds;
  out->bytes_reserved_peak =
      std::max(out->bytes_reserved_peak, local.bytes_reserved_peak);
}

// Loads the semi-join key set from the build plan's result rows, applying
// each key's strip rule (see Plan::SemiJoinKey). Rows whose key value is
// NULL, of a foreign type, or structurally unable to satisfy the original
// conjuncts (e.g. a stripped byte of 0xFF, which would violate the
// `< prefix || 0xFF` upper bound) contribute no key.
void LoadSemiKeys(const Plan& sub, const QueryResult& built,
                  ExecContext::SemiSet& set, ExecContext& ctx) {
  const std::vector<Plan::SemiJoinKey>& keys = sub.semijoin_keys;
  std::vector<std::string> parts(keys.size());
  for (const Row& row : built.rows) {
    if (!ctx.interrupt.ok()) return;
    int var_idx = -1;
    std::string_view var_payload;
    bool ok = true;
    for (size_t i = 0; i < keys.size(); ++i) {
      const Plan::SemiJoinKey& k = keys[i];
      const Value& v = row[static_cast<size_t>(k.select_pos)];
      parts[i].clear();
      if (v.is_null() || v.type() != k.inner_type) {
        ok = false;
        break;
      }
      if (k.inner_type == ValueType::kInt64) {
        AppendEncodedValue(v, parts[i]);
        continue;
      }
      std::string_view p = v.AsStringLike();
      if (k.strip_outer || k.strip_suffix == 0) {
        // Exact key, or the outer value is stripped at probe time instead.
        AppendEncodedBytes(p, parts[i]);
      } else if (k.strip_suffix > 0) {
        // The inner value extends the outer key by exactly `strip_suffix`
        // bytes; the unique candidate outer key is the inner value minus
        // that tail (invalid if the first stripped byte is 0xFF: the inner
        // value would sit at or above `key || 0xFF`).
        size_t s = static_cast<size_t>(k.strip_suffix);
        if (p.size() < s ||
            static_cast<unsigned char>(p[p.size() - s]) == 0xFF) {
          ok = false;
          break;
        }
        AppendEncodedBytes(p.substr(0, p.size() - s), parts[i]);
      } else {
        // Variable depth (descendant): one key per proper prefix, emitted
        // below so the other parts are encoded first.
        var_idx = static_cast<int>(i);
        var_payload = p;
      }
    }
    if (!ok) continue;
    if (var_idx < 0) {
      std::string key;
      for (const std::string& part : parts) key += part;
      if (!ChargeMem(ctx, key.size() + 64, "EXISTS semi-join set")) return;
      set.keys.insert(std::move(key));
      continue;
    }
    for (size_t len = 0; len < var_payload.size(); ++len) {
      // `key > prefix AND key < prefix || 0xFF` holds exactly for proper
      // prefixes whose following byte is not 0xFF.
      if (static_cast<unsigned char>(var_payload[len]) == 0xFF) continue;
      std::string key;
      for (size_t i = 0; i < parts.size(); ++i) {
        if (static_cast<int>(i) == var_idx) {
          AppendEncodedBytes(var_payload.substr(0, len), key);
        } else {
          key += parts[i];
        }
      }
      if (!ChargeMem(ctx, key.size() + 64, "EXISTS semi-join set")) return;
      set.keys.insert(std::move(key));
    }
  }
}

std::optional<bool> ProbeSemiJoin(const Plan& sub, Binding& b,
                                  ExecContext& ctx) {
  auto& set = ctx.semi_sets[&sub];
  if (set.failed) return std::nullopt;
  auto definite = [&](bool v) -> std::optional<bool> {
    // Answered from the probe key alone (no subplan run): a cache hit.
    if (ctx.stats != nullptr) ++ctx.stats->exists_cache_hits;
    return v;
  };
  KeyBufs kb(ctx);
  std::string& key = kb.lo();
  key.clear();
  for (const Plan::SemiJoinKey& k : sub.semijoin_keys) {
    Value t0;
    const Value& o = EvalRef(*k.outer, b, ctx, t0);
    if (o.is_null()) return definite(false);  // NULL key: conjunct unknown
    if (k.inner_type == ValueType::kInt64) {
      if (o.type() == ValueType::kInt64) {
        AppendEncodedValue(o, key);
        continue;
      }
      auto n = o.ToNumber();
      if (!n) return definite(false);  // unparseable text: unknown
      // Near the int64 boundary double conversion rounds; CompareValues
      // might call them equal where the encoded key will not. Fall back.
      if (*n <= -9.0e18 || *n >= 9.0e18) return std::nullopt;
      int64_t x = static_cast<int64_t>(*n);
      if (static_cast<double>(x) != *n) return definite(false);  // fractional
      AppendEncodedValue(Value::Int(x), key);
      continue;
    }
    // String-like inner column. A numeric probe would compare by parsing
    // each inner value's text — not representable as one key. Fall back.
    if (!IsStringLike(o)) return std::nullopt;
    std::string_view p = o.AsStringLike();
    if (k.strip_outer) {
      size_t s = static_cast<size_t>(k.strip_suffix);
      if (p.size() < s) return definite(false);  // too short to extend a key
      if (s > 0 && static_cast<unsigned char>(p[p.size() - s]) == 0xFF) {
        return definite(false);  // would violate the prefix upper bound
      }
      AppendEncodedBytes(p.substr(0, p.size() - s), key);
    } else {
      AppendEncodedBytes(p, key);
    }
  }
  if (!set.built) {
    if (!FaultOk(ctx, "rel.semijoin_build")) {
      set.failed = true;
      return std::nullopt;
    }
    QueryStats local;
    auto r = ExecutePlan(*sub.semijoin_plan, &local,
                         /*need_ordered_rows=*/false, ctx.control);
    MergeStats(local, ctx.stats);
    if (!r.ok()) {
      // A build cut short by cancellation, a deadline, a refused memory
      // reservation or an injected fault must stop the outer execution too
      // — silently falling back to the per-row subplan path would evade the
      // very limit that fired. `failed` keeps only the benign fallback for
      // key-mapping mismatches (the nullopt returns above).
      if (ctx.interrupt.ok()) ctx.interrupt = r.status();
      set.failed = true;
      return std::nullopt;
    }
    set.built = true;
    LoadSemiKeys(sub, r.value(), set, ctx);
    if (!ctx.interrupt.ok()) {
      // The key set is incomplete: poison it so it is never probed.
      set.keys.clear();
      set.failed = true;
      return std::nullopt;
    }
    if (ctx.stats != nullptr) {
      ++ctx.stats->exists_cache_misses;
      ++ctx.stats->exists_semijoin_builds;
    }
    return set.keys.count(key) > 0;
  }
  if (ctx.stats != nullptr) ++ctx.stats->exists_cache_hits;
  return set.keys.count(key) > 0;
}

}  // namespace

Result<QueryResult> ExecutePlan(const Plan& plan, QueryStats* stats,
                                bool need_ordered_rows,
                                const ExecControl* control) {
  ExecContext ctx;
  ctx.stats = stats;
  ctx.control = control;
  ctx.budget = control != nullptr ? control->budget : nullptr;
  // Returns every flushed reservation when the execution ends (all charged
  // state is per-execution) and records the budget high-water mark — on the
  // success and error paths alike.
  struct BudgetLease {
    ExecContext& ctx;
    ~BudgetLease() {
      if (ctx.budget == nullptr) return;
      if (ctx.mem_reserved > 0) ctx.budget->Release(ctx.mem_reserved);
      if (ctx.stats != nullptr) {
        ctx.stats->bytes_reserved_peak =
            std::max(ctx.stats->bytes_reserved_peak, ctx.budget->peak());
      }
    }
  } lease{ctx};
  // Check once before touching any rows, so a request that spent its whole
  // deadline queued (or was cancelled while queued) fails immediately.
  if (CheckControlNow(ctx)) return ctx.interrupt;

  // Merge joins snapshot the outer tuple feeding them via the step trace.
  bool has_merge = false;
  for (const AccessStep& s : plan.steps) {
    if (s.path == AccessPathKind::kMergeJoin) has_merge = true;
  }
  std::vector<RowId> trace;
  if (has_merge) {
    trace.assign(plan.steps.size(), 0);
    ctx.trace = &trace;
  }

  const SelectStmt& stmt = *plan.stmt;
  QueryResult result;
  result.column_labels = plan.column_labels;

  // One binding wide enough for this plan and every nested subplan.
  Binding binding(
      static_cast<size_t>(std::max(plan.max_slots, plan.layout.total_slots)),
      &kNullValue);
  // Constant conjuncts.
  for (const CompiledExpr* f : plan.compiled_post_filters) {
    if (TruthOf(EvalExpr(*f, binding, ctx)) != Truth::kTrue) {
      return result;
    }
  }

  std::vector<Row> emitted;
  const bool want_sort = need_ordered_rows && !stmt.order_by.empty();
  const bool fast_order = !want_sort || plan.order_by_mapped;

  if (fast_order) {
    ExecSteps(plan, 0, binding, ctx, [&]() {
      if (!FaultOk(ctx, "rel.emit_row")) return false;
      Row projected;
      projected.reserve(plan.compiled_select.size());
      for (const CompiledExpr* ce : plan.compiled_select) {
        projected.push_back(EvalExpr(*ce, binding, ctx));
      }
      if (!ChargeMem(ctx, ApproxRowBytes(projected), "result rows")) {
        return false;
      }
      emitted.push_back(std::move(projected));
      return true;
    });
    if (want_sort && !plan.order_by_select_positions.empty()) {
      std::stable_sort(
          emitted.begin(), emitted.end(), [&](const Row& a, const Row& b) {
            for (size_t k = 0; k < plan.order_by_select_positions.size(); ++k) {
              size_t c =
                  static_cast<size_t>(plan.order_by_select_positions[k]);
              bool asc = stmt.order_by[k].ascending;
              if (a[c] < b[c]) return asc;
              if (b[c] < a[c]) return !asc;
            }
            return false;
          });
    }
  } else {
    // ORDER BY expressions that are not projected: materialize a sort key
    // alongside each projected row.
    struct Emitted {
      Row projected;
      Row sort_key;
    };
    std::vector<Emitted> keyed;
    ExecSteps(plan, 0, binding, ctx, [&]() {
      if (!FaultOk(ctx, "rel.emit_row")) return false;
      Emitted e;
      e.projected.reserve(plan.compiled_select.size());
      for (const CompiledExpr* ce : plan.compiled_select) {
        e.projected.push_back(EvalExpr(*ce, binding, ctx));
      }
      e.sort_key.reserve(plan.compiled_order_by.size());
      for (const CompiledExpr* ce : plan.compiled_order_by) {
        e.sort_key.push_back(EvalExpr(*ce, binding, ctx));
      }
      if (!ChargeMem(ctx,
                     ApproxRowBytes(e.projected) + ApproxRowBytes(e.sort_key),
                     "result rows")) {
        return false;
      }
      keyed.push_back(std::move(e));
      return true;
    });
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Emitted& a, const Emitted& b) {
                       for (size_t k = 0; k < a.sort_key.size(); ++k) {
                         bool asc = stmt.order_by[k].ascending;
                         if (a.sort_key[k] < b.sort_key[k]) return asc;
                         if (b.sort_key[k] < a.sort_key[k]) return !asc;
                       }
                       return false;
                     });
    emitted.reserve(keyed.size());
    for (Emitted& e : keyed) emitted.push_back(std::move(e.projected));
  }

  // Enumeration unwinds through the abort path on interruption; surface the
  // recorded status instead of a truncated (wrong) result.
  if (!ctx.interrupt.ok()) return ctx.interrupt;

  if (stmt.distinct) {
    if (!FaultOk(ctx, "rel.distinct")) return ctx.interrupt;
    std::unordered_set<Row, RowHash> seen;
    seen.reserve(emitted.size());
    result.rows.reserve(emitted.size());
    for (Row& e : emitted) {
      if (seen.insert(e).second) {
        // The dedup table holds a second copy of every distinct row.
        if (!ChargeMem(ctx, ApproxRowBytes(e), "DISTINCT dedup")) {
          return ctx.interrupt;
        }
        result.rows.push_back(std::move(e));
      }
    }
  } else {
    result.rows = std::move(emitted);
  }
  if (stats != nullptr) stats->output_rows = result.rows.size();
  return result;
}

Result<QueryResult> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                                  QueryStats* stats) {
  auto plan = PlanSelect(db, stmt, nullptr);
  if (!plan.ok()) return plan.status();
  return ExecutePlan(*plan.value(), stats);
}

Result<QueryResult> ExecutePlannedQuery(const std::vector<const Plan*>& plans,
                                        QueryStats* stats,
                                        bool need_ordered_rows,
                                        const ExecControl* control) {
  if (plans.empty()) {
    return Status::InvalidArgument("empty query");
  }
  if (plans.size() == 1) {
    return ExecutePlan(*plans[0], stats, need_ordered_rows, control);
  }
  // UNION with set semantics; rows from all blocks deduplicated, then
  // ordered by the first block's ORDER BY columns (the translators emit the
  // same ORDER BY positionally in every block). Blocks never need their own
  // sort — the combined result is ordered (or not) in one pass here.
  QueryResult combined;
  std::unordered_set<Row, RowHash> seen;
  // The cross-block dedup table charges the shared budget directly (it has
  // no ExecContext); chunked like the executor's own charges.
  MemoryBudget* budget = control != nullptr ? control->budget : nullptr;
  size_t mem_pending = 0;
  struct UnionLease {
    MemoryBudget* budget;
    size_t reserved = 0;
    ~UnionLease() {
      if (budget != nullptr && reserved > 0) budget->Release(reserved);
    }
  } lease{budget};
  for (size_t b = 0; b < plans.size(); ++b) {
    QueryStats local;
    auto r = ExecutePlan(*plans[b], &local, /*need_ordered_rows=*/false,
                         control);
    if (!r.ok()) return r.status();
    if (stats != nullptr) {
      stats->rows_scanned += local.rows_scanned;
      stats->index_probes += local.index_probes;
      stats->subquery_evals += local.subquery_evals;
      stats->exists_cache_hits += local.exists_cache_hits;
      stats->exists_cache_misses += local.exists_cache_misses;
      stats->hash_tables_built += local.hash_tables_built;
      stats->hash_join_probes += local.hash_join_probes;
      stats->merge_join_rounds += local.merge_join_rounds;
      stats->bitmap_prefilter_tests += local.bitmap_prefilter_tests;
      stats->bitmap_prefilter_hits += local.bitmap_prefilter_hits;
      stats->exists_semijoin_builds += local.exists_semijoin_builds;
      stats->bytes_reserved_peak =
          std::max(stats->bytes_reserved_peak, local.bytes_reserved_peak);
    }
    if (b == 0) {
      combined.column_labels = r.value().column_labels;
    }
    for (Row& row : r.value().rows) {
      if (seen.insert(row).second) {
        if (budget != nullptr) {
          mem_pending += ApproxRowBytes(row);
          if (mem_pending >= kBudgetChunk) {
            XPREL_RETURN_IF_ERROR(budget->Reserve(mem_pending, "UNION dedup"));
            lease.reserved += mem_pending;
            mem_pending = 0;
          }
        }
        combined.rows.push_back(std::move(row));
      }
    }
  }
  if (stats != nullptr && budget != nullptr) {
    stats->bytes_reserved_peak =
        std::max(stats->bytes_reserved_peak, budget->peak());
  }
  const Plan& first = *plans[0];
  if (!need_ordered_rows) {
    // Caller imposes its own order downstream.
  } else if (!first.order_by_select_positions.empty()) {
    const SelectStmt& stmt = *first.stmt;
    std::sort(combined.rows.begin(), combined.rows.end(),
              [&](const Row& a, const Row& b) {
                for (size_t k = 0; k < first.order_by_select_positions.size();
                     ++k) {
                  size_t c =
                      static_cast<size_t>(first.order_by_select_positions[k]);
                  bool asc = stmt.order_by[k].ascending;
                  if (a[c] < b[c]) return asc;
                  if (b[c] < a[c]) return !asc;
                }
                return a < b;
              });
  } else if (!first.stmt->order_by.empty()) {
    // An ORDER BY whose expressions are not among the projected columns
    // cannot be mapped; fall back to a deterministic full-row sort rather
    // than silently emitting unsorted results.
    std::sort(combined.rows.begin(), combined.rows.end());
  }
  if (stats != nullptr) stats->output_rows = combined.rows.size();
  return combined;
}

Result<QueryResult> ExecuteQuery(const Database& db, const SqlQuery& query,
                                 QueryStats* stats) {
  if (query.selects.empty()) {
    return Status::InvalidArgument("empty query");
  }
  std::vector<std::unique_ptr<Plan>> owned;
  std::vector<const Plan*> plans;
  owned.reserve(query.selects.size());
  for (const auto& stmt : query.selects) {
    auto plan = PlanSelect(db, *stmt, nullptr);
    if (!plan.ok()) return plan.status();
    plans.push_back(plan.value().get());
    owned.push_back(std::move(plan).value());
  }
  return ExecutePlannedQuery(plans, stats);
}

}  // namespace xprel::rel
