#ifndef XPREL_REL_TABLE_H_
#define XPREL_REL_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rel/btree.h"
#include "rel/value.h"

namespace xprel::rel {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

struct IndexDef {
  std::string name;
  std::vector<int> column_indexes;  // positions in the table's column list
  bool unique = false;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<IndexDef> indexes;

  // Position of `column` or -1.
  int ColumnIndex(std::string_view column) const;
};

// A heap table plus its B+-tree indexes. Rows are identified by insertion
// order (RowId). Append-only, like the paper's bulk-loaded document store.
class Table {
 public:
  explicit Table(TableSchema schema);
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  size_t row_count() const { return rows_.size(); }

  // Appends a row (must match the column count) and maintains all indexes.
  Status Insert(Row row);

  const Row& row(RowId id) const { return rows_[id]; }
  const std::vector<Row>& rows() const { return rows_; }

  // Index whose column list *starts with* the given columns, or nullptr.
  // The planner uses this to find an index scannable for a bound prefix.
  const BTree* FindIndexWithPrefix(const std::vector<int>& columns,
                                   const IndexDef** def = nullptr) const;
  // Index by name, or nullptr.
  const BTree* FindIndex(std::string_view index_name,
                         const IndexDef** def = nullptr) const;

  // Total number of index entries across all indexes (for stats).
  size_t TotalIndexEntries() const;

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<BTree>> indexes_;  // parallel to schema_.indexes
};

// The catalog: named tables making up one shredded database instance.
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates an empty table; errors if the name exists.
  Result<Table*> CreateTable(TableSchema schema);
  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;

  std::vector<const Table*> tables() const;

  // Rough memory/statistics summary printed by examples and benches.
  std::string DescribeStats() const;

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace xprel::rel

#endif  // XPREL_REL_TABLE_H_
