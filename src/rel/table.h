#ifndef XPREL_REL_TABLE_H_
#define XPREL_REL_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rel/btree.h"
#include "rel/value.h"

namespace xprel::rel {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

struct IndexDef {
  std::string name;
  std::vector<int> column_indexes;  // positions in the table's column list
  bool unique = false;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<IndexDef> indexes;

  // Position of `column` or -1.
  int ColumnIndex(std::string_view column) const;
};

// A column-major table plus its B+-tree indexes. Rows are identified by
// insertion order (RowId). Bulk-loaded like the paper's document store,
// then mutable under DML: Insert appends, Delete tombstones (the row keeps
// its RowId but loses its index entries and is skipped by scans), and
// Compact() rebuilds the physical storage once tombstones accumulate.
//
// Each column is dictionary-encoded: a dense uint32 code per row plus a
// dictionary of the distinct values. The dictionary gives three things the
// batch executor leans on: (1) stable `Value` addresses during execution, so
// slot bindings stay copy-free `const Value*`s; (2) per-distinct-value
// predicate evaluation (a filter over a batch only evaluates once per
// dictionary code, not once per row); (3) a compact 4-byte-per-cell code
// vector that scans touch instead of 40-byte Values.
class Table {
 public:
  explicit Table(TableSchema schema);
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  // Physical rows, including tombstoned ones (the scanable RowId range).
  size_t row_count() const { return row_count_; }
  size_t live_row_count() const { return row_count_ - dead_count_; }
  size_t dead_row_count() const { return dead_count_; }

  // Bumped by every physical change (Insert/Delete/Compact). Cached plans
  // snapshot the versions of the tables they touch and are rebuilt when a
  // snapshot goes stale — plan-time row bitmaps and merge orders reference
  // RowIds, which mutations invalidate.
  uint64_t version() const { return version_; }

  // Appends a row (must match the column count) and maintains all indexes.
  Status Insert(Row row);

  // Tombstones row `id`: removes its entries from every index and marks it
  // dead, so scans and bitmap builds skip it. The RowId stays allocated
  // (cell reads keep working) until Compact().
  Status Delete(RowId id);

  // True when row `id` has been tombstoned.
  bool row_dead(RowId id) const {
    size_t w = static_cast<size_t>(id) >> 6;
    return w < dead_.size() && ((dead_[w] >> (id & 63)) & 1) != 0;
  }
  bool has_dead_rows() const { return dead_count_ > 0; }

  // Rebuilds codes and indexes without the tombstoned rows, compacting the
  // RowId space (live rows keep their relative order). Dictionaries are
  // rebuilt too, dropping values only dead rows referenced.
  void Compact();

  // Copy of the stored row (for DML read-modify-write).
  Row ReadRow(RowId id) const;

  // Replaces row `id` with `row`: tombstones the old row and appends the
  // new one, returning the new RowId. The DML layer uses this for in-place
  // column updates (text, dewey); readers key on column values (pk probes),
  // not RowIds, so the moved row is found again transparently.
  Result<RowId> RewriteRow(RowId id, Row row);

  // Wholesale physical content of one table — what a durability snapshot
  // serializes. Dead rows are carried verbatim (RowIds are positions, and
  // the DML layer's origin maps reference them), so a restored table is
  // bit-identical to the one snapshotted, tombstones included.
  struct Content {
    struct Column {
      std::vector<Value> dict;
      std::vector<uint32_t> codes;  // one per physical row
    };
    std::vector<Column> columns;  // parallel to the schema's column list
    uint64_t row_count = 0;
    std::vector<uint64_t> dead_words;  // tombstone bitmap, 64 rows per word
  };
  Content ExportContent() const;

  // Replaces this table's physical content with `content` (snapshot
  // restore). The schema is untouched; intern maps and every B-tree index
  // are rebuilt from the restored live rows. Validates shape thoroughly —
  // column count, code bounds, value types against the schema, bitmap
  // width, unique-index integrity — and returns InvalidArgument on any
  // mismatch so a corrupt snapshot can never install undefined state.
  // On error the table is left empty (the caller discards the store).
  Status RestoreContent(Content content);

  // Cell access. The returned reference points into the column dictionary
  // and stays valid until the next Insert (tables are load-once before
  // queries run, so executions never race an append).
  const Value& at(RowId id, size_t col) const {
    const ColumnData& c = cols_[col];
    return c.dict[c.codes[id]];
  }

  // Dictionary access for the batch executor's memoized filters.
  uint32_t code(RowId id, size_t col) const { return cols_[col].codes[id]; }
  const std::vector<uint32_t>& codes(size_t col) const {
    return cols_[col].codes;
  }
  size_t dict_size(size_t col) const { return cols_[col].dict.size(); }
  const Value& dict_value(size_t col, uint32_t code) const {
    return cols_[col].dict[code];
  }

  // Index whose column list *starts with* the given columns, or nullptr.
  // The planner uses this to find an index scannable for a bound prefix.
  const BTree* FindIndexWithPrefix(const std::vector<int>& columns,
                                   const IndexDef** def = nullptr) const;
  // Index by name, or nullptr.
  const BTree* FindIndex(std::string_view index_name,
                         const IndexDef** def = nullptr) const;

  // Total number of index entries across all indexes (for stats).
  size_t TotalIndexEntries() const;

 private:
  struct ColumnData {
    std::vector<uint32_t> codes;
    std::vector<Value> dict;
    // Owned copies of the distinct values -> dictionary code. Only touched
    // at load time.
    std::unordered_map<Value, uint32_t, ValueHash> intern;
  };

  // Encodes the key of index `i` for the stored row `id`.
  std::string IndexKeyOfRow(size_t i, RowId id) const;

  TableSchema schema_;
  std::vector<ColumnData> cols_;  // parallel to schema_.columns
  size_t row_count_ = 0;
  size_t dead_count_ = 0;
  uint64_t version_ = 0;
  std::vector<uint64_t> dead_;  // tombstone bitmap, 64 rows per word
  std::vector<std::unique_ptr<BTree>> indexes_;  // parallel to schema_.indexes
};

// The catalog: named tables making up one shredded database instance.
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates an empty table; errors if the name exists.
  Result<Table*> CreateTable(TableSchema schema);
  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;

  std::vector<const Table*> tables() const;

  // Rough memory/statistics summary printed by examples and benches.
  std::string DescribeStats() const;

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace xprel::rel

#endif  // XPREL_REL_TABLE_H_
