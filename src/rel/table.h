#ifndef XPREL_REL_TABLE_H_
#define XPREL_REL_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rel/btree.h"
#include "rel/value.h"

namespace xprel::rel {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

struct IndexDef {
  std::string name;
  std::vector<int> column_indexes;  // positions in the table's column list
  bool unique = false;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<IndexDef> indexes;

  // Position of `column` or -1.
  int ColumnIndex(std::string_view column) const;
};

// A column-major table plus its B+-tree indexes. Rows are identified by
// insertion order (RowId). Append-only, like the paper's bulk-loaded
// document store.
//
// Each column is dictionary-encoded: a dense uint32 code per row plus a
// dictionary of the distinct values. The dictionary gives three things the
// batch executor leans on: (1) stable `Value` addresses during execution, so
// slot bindings stay copy-free `const Value*`s; (2) per-distinct-value
// predicate evaluation (a filter over a batch only evaluates once per
// dictionary code, not once per row); (3) a compact 4-byte-per-cell code
// vector that scans touch instead of 40-byte Values.
class Table {
 public:
  explicit Table(TableSchema schema);
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  size_t row_count() const { return row_count_; }

  // Appends a row (must match the column count) and maintains all indexes.
  Status Insert(Row row);

  // Cell access. The returned reference points into the column dictionary
  // and stays valid until the next Insert (tables are load-once before
  // queries run, so executions never race an append).
  const Value& at(RowId id, size_t col) const {
    const ColumnData& c = cols_[col];
    return c.dict[c.codes[id]];
  }

  // Dictionary access for the batch executor's memoized filters.
  uint32_t code(RowId id, size_t col) const { return cols_[col].codes[id]; }
  const std::vector<uint32_t>& codes(size_t col) const {
    return cols_[col].codes;
  }
  size_t dict_size(size_t col) const { return cols_[col].dict.size(); }
  const Value& dict_value(size_t col, uint32_t code) const {
    return cols_[col].dict[code];
  }

  // Index whose column list *starts with* the given columns, or nullptr.
  // The planner uses this to find an index scannable for a bound prefix.
  const BTree* FindIndexWithPrefix(const std::vector<int>& columns,
                                   const IndexDef** def = nullptr) const;
  // Index by name, or nullptr.
  const BTree* FindIndex(std::string_view index_name,
                         const IndexDef** def = nullptr) const;

  // Total number of index entries across all indexes (for stats).
  size_t TotalIndexEntries() const;

 private:
  struct ColumnData {
    std::vector<uint32_t> codes;
    std::vector<Value> dict;
    // Owned copies of the distinct values -> dictionary code. Only touched
    // at load time.
    std::unordered_map<Value, uint32_t, ValueHash> intern;
  };

  TableSchema schema_;
  std::vector<ColumnData> cols_;  // parallel to schema_.columns
  size_t row_count_ = 0;
  std::vector<std::unique_ptr<BTree>> indexes_;  // parallel to schema_.indexes
};

// The catalog: named tables making up one shredded database instance.
class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Creates an empty table; errors if the name exists.
  Result<Table*> CreateTable(TableSchema schema);
  Table* FindTable(std::string_view name);
  const Table* FindTable(std::string_view name) const;

  std::vector<const Table*> tables() const;

  // Rough memory/statistics summary printed by examples and benches.
  std::string DescribeStats() const;

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
};

}  // namespace xprel::rel

#endif  // XPREL_REL_TABLE_H_
