#include "rel/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

namespace xprel::rel {

std::vector<MorselRange> ComputeMorselRanges(size_t rows, int parallelism) {
  std::vector<MorselRange> out;
  if (rows == 0) return out;
  size_t n = 1;
  if (parallelism > 1 && rows >= 2 * kMorselMinRows) {
    n = (rows + kMorselTargetRows - 1) / kMorselTargetRows;
    // Oversplit relative to the thread count so the dispenser can rebalance
    // skewed morsels, but never shard below the minimum worthwhile size.
    size_t want = std::min(static_cast<size_t>(parallelism) * 4,
                           rows / kMorselMinRows);
    n = std::max(n, want);
    n = std::max<size_t>(n, 1);
    n = std::min(n, rows);
  }
  out.reserve(n);
  size_t base = rows / n, extra = rows % n;
  size_t lo = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    out.push_back({static_cast<RowId>(lo), static_cast<RowId>(lo + len)});
    lo += len;
  }
  return out;
}

namespace {

// Shared state of one RunMorsels call. Heap-allocated and reference-counted
// by every helper task: a helper that the pool only gets around to running
// after the coordinator has already returned (because the caller drained
// the dispenser first) still finds valid memory, sees an empty dispenser,
// and exits without touching anything.
struct MorselGroup {
  std::atomic<size_t> next{0};
  size_t total = 0;
  const std::function<void(size_t)>* body = nullptr;

  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  size_t steals = 0;
  std::unordered_set<std::thread::id> thread_ids;
};

// Drains the dispenser from the current thread. `stealer` marks helper
// threads for the steal counter.
void DrainMorsels(const std::shared_ptr<MorselGroup>& g, bool stealer) {
  for (;;) {
    size_t i = g->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= g->total) break;
    (*g->body)(i);
    {
      std::lock_guard<std::mutex> lock(g->mu);
      ++g->completed;
      if (stealer) ++g->steals;
      g->thread_ids.insert(std::this_thread::get_id());
    }
    g->cv.notify_all();
  }
}

}  // namespace

ParallelRunStats RunMorsels(size_t total, int parallelism, TaskRunner* runner,
                            const std::function<void(size_t)>& body) {
  ParallelRunStats stats;
  stats.morsels = total;
  if (total == 0) return stats;
  if (runner == nullptr || parallelism <= 1 || total == 1) {
    for (size_t i = 0; i < total; ++i) body(i);
    stats.threads = 1;
    return stats;
  }

  auto group = std::make_shared<MorselGroup>();
  group->total = total;
  group->body = &body;

  size_t helpers = std::min(static_cast<size_t>(parallelism - 1), total - 1);
  for (size_t h = 0; h < helpers; ++h) {
    // A refusal is fine — the caller's own drain below covers everything.
    runner->TrySubmit([group]() { DrainMorsels(group, /*stealer=*/true); });
  }
  DrainMorsels(group, /*stealer=*/false);

  // Every index handed out by the dispenser is being executed by some live
  // thread (the caller or a helper holding a shared_ptr), so completed
  // reaches total without needing the pool to pick up the remaining helper
  // tasks — those find the dispenser empty and drop their reference.
  std::unique_lock<std::mutex> lock(group->mu);
  group->cv.wait(lock, [&]() { return group->completed == total; });
  stats.steals = group->steals;
  stats.threads = group->thread_ids.size();
  return stats;
}

}  // namespace xprel::rel
