#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "common/fault_injection.h"
#include "rel/key_codec.h"
#include "rel/query.h"

namespace xprel::rel {

int Layout::SlotOf(const std::string& alias, const std::string& column) const {
  for (const Entry& e : entries) {
    if (e.alias != alias) continue;
    int c = e.table->schema().ColumnIndex(column);
    if (c < 0) return -1;
    return e.offset + c;
  }
  return -1;
}

const Layout::Entry* Layout::FindAlias(const std::string& alias) const {
  for (const Entry& e : entries) {
    if (e.alias == alias) return &e;
  }
  return nullptr;
}

const char* AccessPathKindName(AccessPathKind k) {
  switch (k) {
    case AccessPathKind::kSeqScan:
      return "SeqScan";
    case AccessPathKind::kIndexPoint:
      return "IndexPoint";
    case AccessPathKind::kIndexRange:
      return "IndexRange";
    case AccessPathKind::kPrefixProbe:
      return "PrefixProbe";
    case AccessPathKind::kHashProbe:
      return "HashProbe";
    case AccessPathKind::kIndexUnion:
      return "IndexUnion";
    case AccessPathKind::kMergeJoin:
      return "MergeJoin";
  }
  return "?";
}

namespace {

// Splits a conjunctive WHERE tree into its AND-ed conjuncts. OR subtrees
// stay whole.
void SplitConjuncts(const SqlExpr* e, std::vector<const SqlExpr*>& out) {
  if (e == nullptr) return;
  if (e->kind == SqlExpr::Kind::kBinary && e->op == SqlExpr::BinOp::kAnd) {
    SplitConjuncts(e->args[0].get(), out);
    SplitConjuncts(e->args[1].get(), out);
    return;
  }
  out.push_back(e);
}

// Collects the aliases an expression references at the current query level.
// Aliases introduced by a nested EXISTS's own FROM are not free.
void CollectAliasRefs(const SqlExpr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      out.insert(e.table_alias);
      return;
    case SqlExpr::Kind::kExists: {
      std::set<std::string> inner;
      if (e.subquery->where != nullptr) {
        CollectAliasRefs(*e.subquery->where, inner);
      }
      for (const SelectItem& it : e.subquery->select) {
        CollectAliasRefs(*it.expr, inner);
      }
      for (const TableRef& t : e.subquery->from) inner.erase(t.alias);
      out.insert(inner.begin(), inner.end());
      return;
    }
    default:
      for (const SqlExprPtr& a : e.args) CollectAliasRefs(*a, out);
      return;
  }
}

bool AllBound(const SqlExpr& e, const std::set<std::string>& bound) {
  std::set<std::string> refs;
  CollectAliasRefs(e, refs);
  for (const std::string& r : refs) {
    if (bound.count(r) == 0) return false;
  }
  return true;
}

// True if `e` is alias.column for the given alias; outputs the column index.
bool IsColumnOf(const SqlExpr& e, const std::string& alias, const Table& table,
                int* column) {
  if (e.kind != SqlExpr::Kind::kColumn || e.table_alias != alias) return false;
  int c = table.schema().ColumnIndex(e.column);
  if (c < 0) return false;
  *column = c;
  return true;
}

// True if `e` is Concat(alias.column, <literal>) for the given alias.
bool IsConcatOfColumn(const SqlExpr& e, const std::string& alias,
                      const Table& table, int* column) {
  if (e.kind != SqlExpr::Kind::kConcat) return false;
  return IsColumnOf(*e.args[0], alias, table, column) &&
         e.args[1]->kind == SqlExpr::Kind::kLiteral;
}

struct CandidateAccess {
  AccessStep step;
  double cost = 1e18;
  // True when the access path's key/bound expressions reference an already
  // bound alias — i.e. this is a join probe, not an independent scan. The
  // greedy ordering prefers dependent accesses so chains follow the join
  // graph instead of jumping to a seemingly cheap independent probe whose
  // follow-up joins would be half-open range scans.
  bool dependent = false;
  // Rough per-outer-row output cardinality of this access; the greedy loop
  // multiplies these into a running outer-cardinality estimate that the
  // amortized strategies (hash build, merge sort) divide their setup cost
  // by. These are fanout guesses, not statistics — they only need to rank
  // "once per outer row" against "once per execution" sensibly.
  double est_rows = 1.0;
};

// True when `e` references no table columns at all (literals only).
bool IsLiteralOnly(const SqlExpr& e) {
  std::set<std::string> refs;
  CollectAliasRefs(e, refs);
  return refs.empty();
}

// True when `e` references at least one alias from `bound`.
bool ReferencesAny(const SqlExpr& e, const std::set<std::string>& bound) {
  std::set<std::string> refs;
  CollectAliasRefs(e, refs);
  for (const std::string& r : refs) {
    if (bound.count(r) > 0) return true;
  }
  return false;
}

// Largest table the planner will materialize a regex bitmap for. Paths
// relations (one row per distinct root-to-node path) are tiny; element
// tables are not, and evaluating a regex over millions of rows at plan time
// would move the cost instead of removing it.
constexpr size_t kBitmapMaxRows = size_t{1} << 16;

// Evaluates `re` over column `col` of every row, setting the bit of each
// matching row. Mirrors the executor's REGEXP_LIKE semantics exactly (the
// bitmap *replaces* the per-row predicate): NULL is not a match, string-like
// values match on their payload, other values match on their text rendering.
void BuildRegexBitmap(const Table& table, int col, const rex::Regex& re,
                      RowBitmap& bm) {
  // Dictionary encoding makes this cheap: the regex runs once per distinct
  // value, and the verdicts expand over the code vector.
  const size_t c = static_cast<size_t>(col);
  const size_t dict_n = table.dict_size(c);
  std::vector<std::string_view> texts;
  std::vector<uint32_t> text_codes;
  texts.reserve(dict_n);
  text_codes.reserve(dict_n);
  std::deque<std::string> formatted;  // stable storage for rendered values
  for (uint32_t code = 0; code < dict_n; ++code) {
    const Value& v = table.dict_value(c, code);
    if (v.is_null()) continue;
    if (v.type() == ValueType::kString || v.type() == ValueType::kBytes) {
      texts.push_back(v.AsStringLike());
    } else {
      auto t = v.ToText();
      if (!t) continue;
      formatted.push_back(std::move(*t));
      texts.push_back(formatted.back());
    }
    text_codes.push_back(code);
  }
  std::vector<bool> hits = re.MatchMany(texts);
  std::vector<char> verdict(dict_n, 0);
  for (size_t i = 0; i < text_codes.size(); ++i) {
    if (hits[i]) verdict[text_codes[i]] = 1;
  }
  bm.Reset(table.row_count());
  const std::vector<uint32_t>& codes = table.codes(c);
  const bool dead = table.has_dead_rows();
  for (size_t r = 0; r < codes.size(); ++r) {
    if (dead && table.row_dead(static_cast<RowId>(r))) continue;
    if (verdict[codes[r]]) bm.Set(static_cast<RowId>(r));
  }
}

// Counts index entries matching a fully literal point probe, capped — a
// cheap, exact cardinality estimate available at plan time.
double EstimateLiteralPointRows(const Table& table, const BTree& index,
                                const IndexDef& def,
                                const std::vector<const SqlExpr*>& keys) {
  std::vector<Value> values;
  for (size_t k = 0; k < keys.size(); ++k) {
    if (keys[k]->kind != SqlExpr::Kind::kLiteral) return -1;
    values.push_back(keys[k]->literal);
    (void)def;
    (void)table;
  }
  std::string lo = EncodeKeyPrefixLowerBound(values);
  std::string hi = EncodeKeyPrefixUpperBound(values);
  constexpr size_t kCap = 4096;
  size_t count = 0;
  for (auto it = index.Scan(lo, hi); it.Valid() && count < kCap; it.Next()) {
    ++count;
  }
  return static_cast<double>(count);
}

// Works out the best access path for `alias` given the bound aliases.
// Every viable access is costed; the cheapest wins (ties prefer join
// probes over independent scans, and earlier candidates over later ones).
// `est_outer` is the estimated number of already-bound outer rows this step
// will be entered with: build-once strategies (hash join, merge join)
// amortize their setup over it. `allow_merge` gates the batching merge-join
// operator, which is disabled inside EXISTS subplans (their first-witness
// short-circuit and memoization beat batching).
CandidateAccess ChooseAccess(const std::string& alias, const Table& table,
                             const std::vector<const SqlExpr*>& conjuncts,
                             const std::set<std::string>& bound,
                             double est_outer, bool allow_merge) {
  double rows = static_cast<double>(table.row_count());
  const double outer = std::max(est_outer, 1.0);
  std::vector<CandidateAccess> candidates;

  auto base_step = [&]() {
    AccessStep st;
    st.alias = alias;
    st.table = &table;
    return st;
  };

  // Conjuncts fully bound once `alias` joins.
  std::set<std::string> bound_plus = bound;
  bound_plus.insert(alias);

  // Gather per-column equality keys (col -> bound expression).
  std::vector<std::pair<int, const SqlExpr*>> equalities;
  bool has_bound_filter = false;
  std::vector<const SqlExpr*> or_conjuncts;

  for (const SqlExpr* c : conjuncts) {
    if (!AllBound(*c, bound_plus)) continue;
    std::set<std::string> refs;
    CollectAliasRefs(*c, refs);
    if (refs.count(alias) == 0) continue;
    has_bound_filter = true;

    if (c->kind == SqlExpr::Kind::kBinary && c->op == SqlExpr::BinOp::kEq) {
      int col = -1;
      if (IsColumnOf(*c->args[0], alias, table, &col) &&
          AllBound(*c->args[1], bound)) {
        equalities.push_back({col, c->args[1].get()});
      } else if (IsColumnOf(*c->args[1], alias, table, &col) &&
                 AllBound(*c->args[0], bound)) {
        equalities.push_back({col, c->args[0].get()});
      }
    } else if (c->kind == SqlExpr::Kind::kBinary &&
               c->op == SqlExpr::BinOp::kOr) {
      or_conjuncts.push_back(c);
    }
  }

  // 1) Index point probe on the longest equality prefix of some index.
  {
    const BTree* best_index = nullptr;
    const IndexDef* best_def = nullptr;
    std::vector<const SqlExpr*> best_keys;
    for (const IndexDef& def : table.schema().indexes) {
      std::vector<const SqlExpr*> keys;
      for (int ic : def.column_indexes) {
        const SqlExpr* found = nullptr;
        for (auto& [col, e] : equalities) {
          if (col == ic) {
            found = e;
            break;
          }
        }
        if (found == nullptr) break;
        keys.push_back(found);
      }
      if (!keys.empty() && keys.size() > best_keys.size()) {
        best_index = table.FindIndex(def.name, &best_def);
        best_keys = std::move(keys);
      }
    }
    if (best_index != nullptr) {
      CandidateAccess c;
      c.step = base_step();
      c.step.path = AccessPathKind::kIndexPoint;
      c.step.index = best_index;
      c.step.point_keys = best_keys;
      for (size_t k = 0; k < best_keys.size(); ++k) {
        c.step.point_key_types.push_back(
            table.schema()
                .columns[static_cast<size_t>(best_def->column_indexes[k])]
                .type);
      }
      for (const SqlExpr* k : best_keys) {
        if (ReferencesAny(*k, bound)) c.dependent = true;
      }
      bool literal_only = true;
      for (const SqlExpr* k : best_keys) {
        if (!IsLiteralOnly(*k)) literal_only = false;
      }
      if (literal_only && best_def != nullptr) {
        double est = EstimateLiteralPointRows(table, *best_index, *best_def,
                                              best_keys);
        c.cost = 2.0 + est;
        c.est_rows = std::max(est, 0.25);
      } else {
        c.cost = 3.0;  // join probe: assumed selective
        c.est_rows = 8.0;
      }
      candidates.push_back(std::move(c));
    }
  }

  // 1b) OR of indexable equalities -> union of point probes (index OR
  // expansion; this is how sibling joins with several possible parent FK
  // columns stay cheap).
  for (const SqlExpr* orc : or_conjuncts) {
    std::vector<const SqlExpr*> branches;
    std::vector<const SqlExpr*> stack = {orc};
    while (!stack.empty()) {
      const SqlExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == SqlExpr::Kind::kBinary && e->op == SqlExpr::BinOp::kOr) {
        stack.push_back(e->args[0].get());
        stack.push_back(e->args[1].get());
      } else {
        branches.push_back(e);
      }
    }
    std::vector<AccessStep::UnionProbe> probes;
    bool ok = true;
    bool dependent = false;
    for (const SqlExpr* b : branches) {
      int col = -1;
      const SqlExpr* key = nullptr;
      if (b->kind == SqlExpr::Kind::kBinary && b->op == SqlExpr::BinOp::kEq) {
        if (IsColumnOf(*b->args[0], alias, table, &col) &&
            AllBound(*b->args[1], bound)) {
          key = b->args[1].get();
        } else if (IsColumnOf(*b->args[1], alias, table, &col) &&
                   AllBound(*b->args[0], bound)) {
          key = b->args[0].get();
        }
      }
      const BTree* index =
          col >= 0 ? table.FindIndexWithPrefix({col}) : nullptr;
      if (key == nullptr || index == nullptr) {
        ok = false;
        break;
      }
      if (ReferencesAny(*key, bound)) dependent = true;
      AccessStep::UnionProbe probe;
      probe.index = index;
      probe.column = col;
      probe.key = key;
      probe.key_type = table.schema().columns[static_cast<size_t>(col)].type;
      probes.push_back(std::move(probe));
    }
    if (ok && !probes.empty()) {
      CandidateAccess c;
      c.step = base_step();
      c.step.path = AccessPathKind::kIndexUnion;
      c.step.union_probes = std::move(probes);
      c.dependent = dependent;
      c.cost = 4.0 * static_cast<double>(c.step.union_probes.size());
      c.est_rows = c.cost;
      candidates.push_back(std::move(c));
    }
  }

  // 2) Range / prefix-probe access on an index's first column.
  for (const IndexDef& def : table.schema().indexes) {
    int first_col = def.column_indexes[0];
    const SqlExpr* lo = nullptr;
    bool lo_incl = true;
    const SqlExpr* hi = nullptr;
    bool hi_incl = true;
    const SqlExpr* probe = nullptr;
    // Strict ancestor pattern: e > A.c together with e < A.c || byte means
    // A.c is a proper Dewey prefix of e - served by prefix point probes
    // instead of an open-ended range scan.
    const SqlExpr* strict_upper = nullptr;   // e with A.c < e
    const SqlExpr* concat_bound = nullptr;   // e with e < (A.c || lit)

    for (const SqlExpr* c : conjuncts) {
      int col = -1;
      // BETWEEN forms.
      if (c->kind == SqlExpr::Kind::kBetween) {
        if (IsColumnOf(*c->args[0], alias, table, &col) && col == first_col &&
            AllBound(*c->args[1], bound) && AllBound(*c->args[2], bound)) {
          lo = c->args[1].get();
          lo_incl = true;
          hi = c->args[2].get();
          hi_incl = true;
          break;
        }
        int col2 = -1;
        if (AllBound(*c->args[0], bound) &&
            IsColumnOf(*c->args[1], alias, table, &col) && col == first_col &&
            IsConcatOfColumn(*c->args[2], alias, table, &col2) &&
            col2 == first_col) {
          probe = c->args[0].get();
          break;
        }
        continue;
      }
      if (c->kind == SqlExpr::Kind::kBinary) {
        auto set_bound = [&](SqlExpr::BinOp op, const SqlExpr* other) {
          switch (op) {
            case SqlExpr::BinOp::kGt:
              lo = other;
              lo_incl = false;
              break;
            case SqlExpr::BinOp::kGe:
              lo = other;
              lo_incl = true;
              break;
            case SqlExpr::BinOp::kLt:
              hi = other;
              hi_incl = false;
              break;
            case SqlExpr::BinOp::kLe:
              hi = other;
              hi_incl = true;
              break;
            default:
              break;
          }
        };
        auto flip = [](SqlExpr::BinOp op) {
          switch (op) {
            case SqlExpr::BinOp::kGt:
              return SqlExpr::BinOp::kLt;
            case SqlExpr::BinOp::kGe:
              return SqlExpr::BinOp::kLe;
            case SqlExpr::BinOp::kLt:
              return SqlExpr::BinOp::kGt;
            case SqlExpr::BinOp::kLe:
              return SqlExpr::BinOp::kGe;
            default:
              return op;
          }
        };
        bool is_ineq = c->op == SqlExpr::BinOp::kGt ||
                       c->op == SqlExpr::BinOp::kGe ||
                       c->op == SqlExpr::BinOp::kLt ||
                       c->op == SqlExpr::BinOp::kLe;
        if (!is_ineq) continue;
        if (IsColumnOf(*c->args[0], alias, table, &col) && col == first_col &&
            AllBound(*c->args[1], bound)) {
          set_bound(c->op, c->args[1].get());
          if (c->op == SqlExpr::BinOp::kLt) strict_upper = c->args[1].get();
        } else if (IsColumnOf(*c->args[1], alias, table, &col) &&
                   col == first_col && AllBound(*c->args[0], bound)) {
          set_bound(flip(c->op), c->args[0].get());
          if (c->op == SqlExpr::BinOp::kGt) strict_upper = c->args[0].get();
        } else if (IsConcatOfColumn(*c->args[0], alias, table, &col) &&
                   col == first_col && AllBound(*c->args[1], bound)) {
          if (c->op == SqlExpr::BinOp::kLt || c->op == SqlExpr::BinOp::kLe) {
            hi = c->args[1].get();
            hi_incl = false;
          } else {
            concat_bound = c->args[1].get();
          }
        } else if (IsConcatOfColumn(*c->args[1], alias, table, &col) &&
                   col == first_col && AllBound(*c->args[0], bound)) {
          if (c->op == SqlExpr::BinOp::kGt || c->op == SqlExpr::BinOp::kGe) {
            hi = c->args[0].get();
            hi_incl = false;
          } else {
            concat_bound = c->args[0].get();
          }
        }
      }
    }

    if (probe == nullptr && strict_upper != nullptr &&
        concat_bound != nullptr &&
        SqlToString(*strict_upper) == SqlToString(*concat_bound)) {
      probe = strict_upper;
    }
    const IndexDef* d = nullptr;
    const BTree* index = table.FindIndex(def.name, &d);
    ValueType first_type =
        table.schema().columns[static_cast<size_t>(first_col)].type;
    if (probe != nullptr) {
      bool dependent = ReferencesAny(*probe, bound);
      {
        CandidateAccess c;
        c.step = base_step();
        c.step.path = AccessPathKind::kPrefixProbe;
        c.step.index = index;
        c.step.probe_value = probe;
        c.cost = 8.0;
        c.est_rows = 4.0;
        c.dependent = dependent;
        candidates.push_back(std::move(c));
      }
      // Dewey merge join (ancestor mode): one sorted sweep of the inner
      // rows instead of depth-many B-tree probes per outer row. Wins once
      // the sort of the outer batch amortizes, i.e. for non-trivial outer
      // cardinalities.
      if (allow_merge && dependent &&
          (first_type == ValueType::kBytes ||
           first_type == ValueType::kString)) {
        CandidateAccess c;
        c.step = base_step();
        c.step.path = AccessPathKind::kMergeJoin;
        c.step.merge_mode = MergeJoinMode::kAncestor;
        c.step.merge_column = first_col;
        c.step.index = index;
        c.step.probe_value = probe;
        c.cost = 2.0 + rows / (4.0 * outer);
        c.est_rows = 4.0;
        c.dependent = true;
        candidates.push_back(std::move(c));
      }
      continue;
    }
    if (lo != nullptr || hi != nullptr) {
      bool dependent =
          (lo != nullptr && ReferencesAny(*lo, bound)) ||
          (hi != nullptr && ReferencesAny(*hi, bound));
      {
        CandidateAccess c;
        c.step = base_step();
        c.step.path = AccessPathKind::kIndexRange;
        c.step.index = index;
        c.step.range_type = first_type;
        c.step.range_lo = lo;
        c.step.range_lo_inclusive = lo_incl;
        c.step.range_hi = hi;
        c.step.range_hi_inclusive = hi_incl;
        c.dependent = dependent;
        if (lo != nullptr && hi != nullptr) {
          c.cost = 20.0;  // bounded window: narrow
          c.est_rows = 16.0;
        } else {
          c.cost = 60.0 + rows / 4;  // half-open: may cover much of the table
          c.est_rows = std::max(4.0, rows / 4);
        }
        candidates.push_back(std::move(c));
      }
      // Merge join (range mode): sort the outer batch by its lower bound
      // and sweep the plan-time-sorted inner rows with a monotone start
      // frontier (staircase-style skipping). Double columns are excluded:
      // NaN bounds have no place in a total order, which the outer-batch
      // sort and the frontier's monotonicity both require.
      if (allow_merge && dependent && first_type != ValueType::kDouble) {
        CandidateAccess c;
        c.step = base_step();
        c.step.path = AccessPathKind::kMergeJoin;
        c.step.merge_mode = MergeJoinMode::kRange;
        c.step.merge_column = first_col;
        c.step.index = index;
        c.step.range_type = first_type;
        c.step.range_lo = lo;
        c.step.range_lo_inclusive = lo_incl;
        c.step.range_hi = hi;
        c.step.range_hi_inclusive = hi_incl;
        c.dependent = true;
        if (lo != nullptr) {
          c.cost = 2.0 + rows / (4.0 * outer);
          c.est_rows = lo != nullptr && hi != nullptr ? 16.0
                                                      : std::max(4.0, rows / 4);
        } else {
          // hi-only: no skipping possible, every pass rescans from the
          // front — only marginally better than the probing range scan.
          c.cost = 40.0 + rows / 8;
          c.est_rows = std::max(4.0, rows / 4);
        }
        candidates.push_back(std::move(c));
      }
    }
  }

  // 3) Build-once hash probe for equijoins. The build scans the table once
  // and the per-outer-row probe is O(1), so its amortized cost undercuts a
  // B-tree point probe when the outer cardinality is large. For unindexed
  // columns the hash join is also the only sub-scan option, so it keeps a
  // capped standalone cost even with a tiny outer estimate.
  for (auto& [col, e] : equalities) {
    bool dependent = ReferencesAny(*e, bound);
    bool indexed = table.FindIndexWithPrefix({col}) != nullptr;
    if (indexed && !dependent) continue;  // literal point probe already wins
    // Doubles are excluded: -0.0 == 0.0 under CompareValues but their
    // encoded keys differ, so a hash lookup would under-approximate.
    if (table.schema().columns[static_cast<size_t>(col)].type ==
        ValueType::kDouble) {
      continue;
    }
    CandidateAccess c;
    c.step = base_step();
    c.step.path = AccessPathKind::kHashProbe;
    c.step.hash_column = col;
    c.step.hash_key = e;
    c.step.hash_key_type =
        table.schema().columns[static_cast<size_t>(col)].type;
    double amortized = 2.0 + rows / outer;
    c.cost = indexed ? amortized : std::min(30.0, amortized);
    c.est_rows = 8.0;
    c.dependent = dependent;
    candidates.push_back(std::move(c));
  }

  // 4) Sequential scan fallback.
  {
    CandidateAccess c;
    c.step = base_step();
    c.step.path = AccessPathKind::kSeqScan;
    c.cost = has_bound_filter ? 10.0 + rows / 2 : 100.0 + rows * 2;
    c.est_rows = has_bound_filter ? std::max(2.0, rows / 5.0)
                                  : std::max(rows, 1.0);
    candidates.push_back(std::move(c));
  }

  size_t best_i = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    const CandidateAccess& a = candidates[i];
    const CandidateAccess& b = candidates[best_i];
    if (a.cost < b.cost || (a.cost == b.cost && a.dependent && !b.dependent)) {
      best_i = i;
    }
  }
  return std::move(candidates[best_i]);
}

// Lowers SqlExpr trees into the plan's CompiledExpr arena: column references
// become integer slots, regexes/subplans become direct pointers. Shared
// subexpressions (access-path keys are subtrees of WHERE conjuncts) compile
// once. Collects every referenced slot for the correlation analysis that
// feeds EXISTS memoization.
class ExprCompiler {
 public:
  explicit ExprCompiler(Plan& plan) : plan_(plan) {}

  const CompiledExpr* Compile(const SqlExpr& e) {
    auto it = cache_.find(&e);
    if (it != cache_.end()) return it->second;
    plan_.expr_pool.emplace_back();
    CompiledExpr& c = plan_.expr_pool.back();
    cache_.emplace(&e, &c);
    c.kind = e.kind;
    c.op = e.op;
    switch (e.kind) {
      case SqlExpr::Kind::kColumn: {
        c.slot = plan_.layout.SlotOf(e.table_alias, e.column);
        if (c.slot < 0 && status.ok()) {
          status = Status::InvalidArgument("unresolvable column: " +
                                           e.table_alias + "." + e.column);
        }
        referenced.insert(c.slot);
        break;
      }
      case SqlExpr::Kind::kLiteral:
        c.literal = e.literal;
        break;
      case SqlExpr::Kind::kRegexpLike: {
        auto rit = plan_.regexes.find(&e);
        if (rit != plan_.regexes.end()) {
          c.regex = &rit->second;
        } else if (status.ok()) {
          status = Status::Internal("REGEXP_LIKE without compiled pattern");
        }
        break;
      }
      case SqlExpr::Kind::kExists: {
        auto sit = plan_.subplans.find(&e);
        if (sit != plan_.subplans.end()) {
          c.subplan = sit->second.get();
          // The subplan's free slots are (outer or own) slots of this level.
          c.correlated_slots = c.subplan->correlated_slots;
          referenced.insert(c.correlated_slots.begin(),
                            c.correlated_slots.end());
        } else if (status.ok()) {
          status = Status::Internal("EXISTS without compiled subplan");
        }
        break;
      }
      default:
        break;
    }
    for (const SqlExprPtr& a : e.args) c.args.push_back(Compile(*a));
    return &c;
  }

  Status status;
  std::set<int> referenced;

 private:
  Plan& plan_;
  std::unordered_map<const SqlExpr*, const CompiledExpr*> cache_;
};

// Pattern-matches the correlated conjuncts of an EXISTS subplan and, when
// every one of them is semi-join-able — an equality `inner.col = e` or a
// Dewey prefix-extension triple `inner.col > e AND inner.col < e || 0xFF
// [AND LENGTH(inner.col) = LENGTH(e) + c]` (either orientation; these are
// exactly the shapes the translator's EmitStructuralJoin produces) —
// rewrites the subplan into a build-once semi-join: a standalone "build
// plan" (this sub-select minus the correlated conjuncts, projecting the
// inner key columns) seeds a key set once per execution, and each EXISTS
// evaluation becomes a set lookup. On any unrecognized correlated conjunct
// the function leaves the plan untouched (per-row ExecExists still works).
void AnalyzeSemiJoin(const Database& db, Plan& plan, ExprCompiler& comp) {
  if (plan.first_own_entry <= 0 || plan.stmt == nullptr) return;
  if (plan.steps.empty() || plan.stmt->where == nullptr) return;

  std::set<std::string> own_aliases;
  for (size_t i = static_cast<size_t>(plan.first_own_entry);
       i < plan.layout.entries.size(); ++i) {
    own_aliases.insert(plan.layout.entries[i].alias);
  }

  auto own_only = [&](const SqlExpr& e) {
    std::set<std::string> refs;
    CollectAliasRefs(e, refs);
    for (const std::string& r : refs) {
      if (own_aliases.count(r) == 0) return false;
    }
    return true;
  };
  // True when `e` references outer aliases only (at least one) — the outer
  // side of a join key, evaluable against the outer row at probe time.
  auto outer_side = [&](const SqlExpr& e) {
    std::set<std::string> refs;
    CollectAliasRefs(e, refs);
    bool any = false;
    for (const std::string& r : refs) {
      if (own_aliases.count(r) > 0) return false;
      any = true;
    }
    return any;
  };
  // Matches Col(<own alias>, <column>) and reports the column's type.
  auto inner_col = [&](const SqlExpr& e, ValueType* type) {
    if (e.kind != SqlExpr::Kind::kColumn) return false;
    if (own_aliases.count(e.table_alias) == 0) return false;
    const Layout::Entry* en = plan.layout.FindAlias(e.table_alias);
    if (en == nullptr) return false;
    int c = en->table->schema().ColumnIndex(e.column);
    if (c < 0) return false;
    *type = en->table->schema().columns[static_cast<size_t>(c)].type;
    return true;
  };
  // Matches Concat(Col(<own alias>, col), 0xFF-literal) — the prefix upper
  // bound of the translator's structural triples.
  auto inner_upper = [&](const SqlExpr& e, const SqlExpr** col) {
    if (e.kind != SqlExpr::Kind::kConcat) return false;
    ValueType t;
    if (!inner_col(*e.args[0], &t)) return false;
    const SqlExpr& lit = *e.args[1];
    if (lit.kind != SqlExpr::Kind::kLiteral ||
        lit.literal.type() != ValueType::kBytes ||
        lit.literal.AsBytes() != "\xFF") {
      return false;
    }
    *col = e.args[0].get();
    return true;
  };

  std::vector<const SqlExpr*> conjuncts;
  SplitConjuncts(plan.stmt->where.get(), conjuncts);

  struct KeySpec {
    const SqlExpr* inner = nullptr;  // Col(own alias, col)
    const SqlExpr* outer = nullptr;
    ValueType inner_type = ValueType::kNull;
    int strip_suffix = 0;
    bool strip_outer = false;
  };
  struct PrefixGroup {
    std::string id;  // inner column text + outer text + orientation
    const SqlExpr* inner = nullptr;
    const SqlExpr* outer = nullptr;
    bool backward = false;
    bool has_gt = false;
    bool has_lt = false;
    int len_add = 0;  // 0 = no LENGTH conjunct (variable depth)
  };

  std::vector<const SqlExpr*> residual;
  std::vector<KeySpec> eq_keys;
  std::vector<PrefixGroup> groups;

  auto group_of = [&](const SqlExpr* in, const SqlExpr* out,
                      bool backward) -> PrefixGroup& {
    std::string id = SqlToString(*in) + "\x01" + SqlToString(*out) +
                     (backward ? "\x01b" : "\x01f");
    for (PrefixGroup& g : groups) {
      if (g.id == id) return g;
    }
    groups.push_back({std::move(id), in, out, backward, false, false, 0});
    return groups.back();
  };

  for (const SqlExpr* c : conjuncts) {
    if (own_only(*c)) {
      residual.push_back(c);
      continue;
    }
    if (c->kind != SqlExpr::Kind::kBinary) return;  // unrecognized: bail
    const SqlExpr* a0 = c->args[0].get();
    const SqlExpr* a1 = c->args[1].get();
    ValueType t = ValueType::kNull;
    const SqlExpr* col = nullptr;
    switch (c->op) {
      case SqlExpr::BinOp::kEq: {
        // LENGTH(x) = LENGTH(y) + c — the fixed-depth leg of a triple.
        if (a0->kind == SqlExpr::Kind::kLength &&
            a1->kind == SqlExpr::Kind::kAdd &&
            a1->args[0]->kind == SqlExpr::Kind::kLength &&
            a1->args[1]->kind == SqlExpr::Kind::kLiteral &&
            a1->args[1]->literal.type() == ValueType::kInt64) {
          int64_t add = a1->args[1]->literal.AsInt();
          const SqlExpr* x = a0->args[0].get();
          const SqlExpr* y = a1->args[0]->args[0].get();
          if (add <= 0) return;
          if (inner_col(*x, &t) && outer_side(*y)) {
            PrefixGroup& g = group_of(x, y, /*backward=*/false);
            g.len_add = static_cast<int>(add);
            continue;
          }
          if (outer_side(*x) && inner_col(*y, &t)) {
            PrefixGroup& g = group_of(y, x, /*backward=*/true);
            g.len_add = static_cast<int>(add);
            continue;
          }
          return;
        }
        // Exact equality key.
        const SqlExpr* in = nullptr;
        const SqlExpr* out = nullptr;
        if (inner_col(*a0, &t) && outer_side(*a1)) {
          in = a0;
          out = a1;
        } else if (inner_col(*a1, &t) && outer_side(*a0)) {
          in = a1;
          out = a0;
        } else {
          return;
        }
        // Doubles are excluded: -0.0 == 0.0 but their encodings differ, so
        // set membership would diverge from CompareValues.
        if (t != ValueType::kInt64 && t != ValueType::kString &&
            t != ValueType::kBytes) {
          return;
        }
        eq_keys.push_back({in, out, t, 0, false});
        continue;
      }
      case SqlExpr::BinOp::kGt:
        if (inner_col(*a0, &t) && outer_side(*a1)) {
          group_of(a0, a1, /*backward=*/false).has_gt = true;  // inner > e
          continue;
        }
        if (outer_side(*a0) && inner_col(*a1, &t)) {
          group_of(a1, a0, /*backward=*/true).has_gt = true;  // e > inner
          continue;
        }
        return;
      case SqlExpr::BinOp::kLt:
        if (inner_upper(*a1, &col) && outer_side(*a0)) {
          group_of(col, a0, /*backward=*/true).has_lt = true;  // e < inner||FF
          continue;
        }
        if (inner_col(*a0, &t) && a1->kind == SqlExpr::Kind::kConcat &&
            a1->args[1]->kind == SqlExpr::Kind::kLiteral &&
            a1->args[1]->literal.type() == ValueType::kBytes &&
            a1->args[1]->literal.AsBytes() == "\xFF" &&
            outer_side(*a1->args[0])) {
          // inner < e||FF
          group_of(a0, a1->args[0].get(), /*backward=*/false).has_lt = true;
          continue;
        }
        return;
      default:
        return;
    }
  }

  std::vector<KeySpec> keys = std::move(eq_keys);
  int variable_strips = 0;
  for (const PrefixGroup& g : groups) {
    if (!g.has_gt || !g.has_lt) return;  // lone inequality: not a semi-join
    ValueType t = ValueType::kNull;
    if (!inner_col(*g.inner, &t)) return;
    if (t != ValueType::kString && t != ValueType::kBytes) return;
    int strip = g.len_add > 0 ? g.len_add : -1;
    if (strip < 0) {
      // Variable-depth: the build enumerates every proper prefix of the
      // inner value. More than one such key would multiply enumerations;
      // in the outer-extends-inner orientation the enumeration would have
      // to happen per probe, defeating the point. Bail on both.
      if (g.backward) return;
      if (++variable_strips > 1) return;
    }
    keys.push_back({g.inner, g.outer, t, strip, g.backward});
  }
  if (keys.empty()) return;  // uncorrelated — the plain memo already hits

  // Build plan: same FROM, own-only conjuncts, inner key columns projected.
  auto build_stmt = std::make_unique<SelectStmt>();
  build_stmt->from = plan.stmt->from;
  SqlExprPtr where;
  for (const SqlExpr* r : residual) {
    where = And(std::move(where), CloneSqlExpr(*r));
  }
  build_stmt->where = std::move(where);
  for (const KeySpec& k : keys) {
    build_stmt->select.push_back({CloneSqlExpr(*k.inner), ""});
  }
  auto built = PlanSelect(db, *build_stmt, nullptr);
  if (!built.ok()) return;

  for (size_t i = 0; i < keys.size(); ++i) {
    Plan::SemiJoinKey sk;
    sk.select_pos = static_cast<int>(i);
    sk.outer = comp.Compile(*keys[i].outer);
    sk.inner_type = keys[i].inner_type;
    sk.strip_suffix = keys[i].strip_suffix;
    sk.strip_outer = keys[i].strip_outer;
    plan.semijoin_keys.push_back(sk);
  }
  plan.semijoin_stmt = std::move(build_stmt);
  plan.semijoin_plan = std::move(built).value();
  plan.semijoin_decorrelated = true;
}

// Collects the column slots a compiled filter reads. EXISTS nodes are not
// descended into (their slots belong to the subplan's layout); the flag
// alone forces the filter onto the per-row path.
void CollectFilterSlots(const CompiledExpr& e, std::vector<int>& slots,
                        bool& has_exists) {
  if (e.kind == SqlExpr::Kind::kColumn) {
    slots.push_back(e.slot);
    return;
  }
  if (e.kind == SqlExpr::Kind::kExists) {
    has_exists = true;
    return;
  }
  for (const CompiledExpr* a : e.args) {
    CollectFilterSlots(*a, slots, has_exists);
  }
}

}  // namespace

Result<std::unique_ptr<Plan>> PlanSelect(const Database& db,
                                         const SelectStmt& stmt,
                                         const Layout* outer) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("rel.plan_select"));
  auto plan = std::make_unique<Plan>();
  plan->stmt = &stmt;
  // Correlated subplans run on the executor's row-at-a-time path; top-level
  // plans (including semi-join build plans) run vectorized.
  plan->is_subplan = outer != nullptr;

  // Layout: outer entries first, then our FROM aliases.
  if (outer != nullptr) {
    plan->layout = *outer;
  }
  plan->first_own_entry = static_cast<int>(plan->layout.entries.size());
  if (stmt.from.empty()) {
    return Status::InvalidArgument("select with empty FROM");
  }
  for (const TableRef& ref : stmt.from) {
    const Table* table = db.FindTable(ref.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + ref.table);
    }
    if (plan->layout.FindAlias(ref.alias) != nullptr) {
      return Status::InvalidArgument("duplicate alias: " + ref.alias);
    }
    plan->layout.entries.push_back(
        {ref.alias, table, plan->layout.total_slots});
    plan->layout.total_slots +=
        static_cast<int>(table->schema().columns.size());
  }

  // Conjuncts of the WHERE clause.
  std::vector<const SqlExpr*> conjuncts;
  SplitConjuncts(stmt.where.get(), conjuncts);

  // Compile regexes and subqueries appearing anywhere at this level.
  {
    std::vector<const SqlExpr*> stack;
    if (stmt.where != nullptr) stack.push_back(stmt.where.get());
    for (const SelectItem& it : stmt.select) stack.push_back(it.expr.get());
    for (const OrderByItem& ob : stmt.order_by) stack.push_back(ob.expr.get());
    while (!stack.empty()) {
      const SqlExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == SqlExpr::Kind::kRegexpLike) {
        if (e->args[1]->kind != SqlExpr::Kind::kLiteral ||
            e->args[1]->literal.type() != ValueType::kString) {
          return Status::Unsupported("REGEXP_LIKE pattern must be a literal");
        }
        XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("rel.plan_regex"));
        auto re = rex::Regex::Compile(e->args[1]->literal.AsString());
        if (!re.ok()) return re.status();
        plan->regexes.emplace(e, std::move(re).value());
      } else if (e->kind == SqlExpr::Kind::kExists) {
        auto sub = PlanSelect(db, *e->subquery, &plan->layout);
        if (!sub.ok()) return sub.status();
        plan->subplans.emplace(e, std::move(sub).value());
        continue;  // subquery internals belong to the subplan
      }
      for (const SqlExprPtr& a : e->args) stack.push_back(a.get());
    }
  }

  // Greedy join ordering.
  std::set<std::string> bound;
  for (int i = 0; i < plan->first_own_entry; ++i) {
    bound.insert(plan->layout.entries[static_cast<size_t>(i)].alias);
  }
  std::vector<const Layout::Entry*> pending;
  for (size_t i = static_cast<size_t>(plan->first_own_entry);
       i < plan->layout.entries.size(); ++i) {
    pending.push_back(&plan->layout.entries[i]);
  }

  std::vector<bool> conjunct_assigned(conjuncts.size(), false);

  // Running estimate of how many outer tuples each subsequent step is
  // entered with; build-once strategies divide their setup cost by it.
  double est_outer = 1.0;
  // Merge joins batch the whole outer side before producing a row, which
  // defeats the first-witness short-circuit and memoization of EXISTS
  // subplans — keep them out of correlated subqueries.
  const bool allow_merge = outer == nullptr;

  while (!pending.empty()) {
    size_t best_i = 0;
    CandidateAccess best;
    bool have_best = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      CandidateAccess cand =
          ChooseAccess(pending[i]->alias, *pending[i]->table, conjuncts, bound,
                       est_outer, allow_merge);
      // Connectivity-first: a join probe beats any independent access, so
      // chains follow the query's join graph.
      bool better = !have_best;
      if (have_best) {
        if (cand.dependent != best.dependent) {
          better = cand.dependent;
        } else {
          better = cand.cost < best.cost ||
                   (cand.cost == best.cost &&
                    pending[i]->table->row_count() <
                        best.step.table->row_count());
        }
      }
      if (better) {
        best = std::move(cand);
        best_i = i;
        have_best = true;
      }
    }
    bound.insert(best.step.alias);
    est_outer = std::min(est_outer * std::max(best.est_rows, 0.25), 1e12);
    // Assign every not-yet-assigned conjunct that is now fully bound.
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (conjunct_assigned[c]) continue;
      if (AllBound(*conjuncts[c], bound)) {
        best.step.filters.push_back(conjuncts[c]);
        conjunct_assigned[c] = true;
      }
    }
    plan->steps.push_back(std::move(best.step));
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_i));
  }

  // Conjuncts referencing only outer aliases (or nothing).
  for (size_t c = 0; c < conjuncts.size(); ++c) {
    if (!conjunct_assigned[c]) plan->post_filters.push_back(conjuncts[c]);
  }

  // -------------------------------------------------------------------
  // Finalize: lower every expression the executor will touch into the
  // compiled arena so evaluation never does string lookups, alias scans or
  // IndexDef recovery per row.
  // -------------------------------------------------------------------
  plan->first_own_slot =
      static_cast<size_t>(plan->first_own_entry) < plan->layout.entries.size()
          ? plan->layout.entries[static_cast<size_t>(plan->first_own_entry)]
                .offset
          : plan->layout.total_slots;

  ExprCompiler comp(*plan);
  for (const SelectItem& it : stmt.select) {
    plan->compiled_select.push_back(comp.Compile(*it.expr));
    plan->column_labels.push_back(!it.label.empty() ? it.label
                                                    : SqlToString(*it.expr));
  }
  for (const OrderByItem& ob : stmt.order_by) {
    plan->compiled_order_by.push_back(comp.Compile(*ob.expr));
  }
  // Map each ORDER BY expression onto a projected column where possible so
  // the executor can sort the projected rows in place.
  plan->order_by_mapped = !stmt.order_by.empty();
  for (const OrderByItem& ob : stmt.order_by) {
    int pos = -1;
    for (size_t i = 0; i < stmt.select.size(); ++i) {
      const SqlExpr& se = *stmt.select[i].expr;
      const SqlExpr& oe = *ob.expr;
      if (se.kind == SqlExpr::Kind::kColumn &&
          oe.kind == SqlExpr::Kind::kColumn &&
          se.table_alias == oe.table_alias && se.column == oe.column) {
        pos = static_cast<int>(i);
        break;
      }
    }
    if (pos < 0) {
      plan->order_by_mapped = false;
      plan->order_by_select_positions.clear();
      break;
    }
    plan->order_by_select_positions.push_back(pos);
  }
  for (const SqlExpr* f : plan->post_filters) {
    plan->compiled_post_filters.push_back(comp.Compile(*f));
  }
  for (AccessStep& st : plan->steps) {
    const Layout::Entry* entry = plan->layout.FindAlias(st.alias);
    assert(entry != nullptr);
    st.bind_offset = entry->offset;
    for (const SqlExpr* f : st.filters) {
      // Path-id bitmap pre-filter: a REGEXP_LIKE over a column of a small
      // relation is evaluated once per row here, at plan time, and becomes
      // an O(1) bitset test per enumerated row (cached with the plan).
      int bcol = -1;
      auto rit = plan->regexes.find(f);
      if (f->kind == SqlExpr::Kind::kRegexpLike &&
          rit != plan->regexes.end() &&
          IsColumnOf(*f->args[0], st.alias, *st.table, &bcol) &&
          st.table->row_count() <= kBitmapMaxRows) {
        plan->bitmaps.emplace_back();
        RowBitmap& bm = plan->bitmaps.back();
        BuildRegexBitmap(*st.table, bcol, rit->second, bm);
        st.bitmap_filters.push_back(&bm);
        st.bitmap_sources.push_back(f);
        continue;
      }
      st.cfilters.push_back(comp.Compile(*f));
    }
    for (const SqlExpr* k : st.point_keys) {
      st.cpoint_keys.push_back(comp.Compile(*k));
    }
    if (st.range_lo != nullptr) st.crange_lo = comp.Compile(*st.range_lo);
    if (st.range_hi != nullptr) st.crange_hi = comp.Compile(*st.range_hi);
    if (st.probe_value != nullptr) {
      st.cprobe_value = comp.Compile(*st.probe_value);
    }
    if (st.hash_key != nullptr) st.chash_key = comp.Compile(*st.hash_key);
    for (AccessStep::UnionProbe& p : st.union_probes) {
      p.ckey = comp.Compile(*p.key);
    }
    if (st.path == AccessPathKind::kMergeJoin) {
      // Materialize the inner side in join-key order once, at plan time:
      // the index's first column is the merge column, so an index walk
      // yields the rows already sorted. Bitmap pre-filters apply here too,
      // shrinking the merge's inner side before execution ever starts.
      st.merge_order.reserve(st.index->size());
      for (auto it = st.index->ScanAll(); it.Valid(); it.Next()) {
        RowId r = it.row();
        bool pass = true;
        for (const RowBitmap* bm : st.bitmap_filters) {
          if (!bm->Test(r)) {
            pass = false;
            break;
          }
        }
        if (pass) st.merge_order.push_back(r);
      }
    }
  }
  if (!comp.status.ok()) return comp.status;

  // Classify each residual filter for the batch executor: a filter reading
  // exactly one column slot (and no subplan) is evaluated once per distinct
  // dictionary value of that column; everything else runs per row.
  for (AccessStep& st : plan->steps) {
    st.cfilter_info.resize(st.cfilters.size());
    for (size_t fi = 0; fi < st.cfilters.size(); ++fi) {
      AccessStep::FilterInfo& info = st.cfilter_info[fi];
      std::vector<int> slots;
      CollectFilterSlots(*st.cfilters[fi], slots, info.has_exists);
      std::sort(slots.begin(), slots.end());
      slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
      if (info.has_exists || slots.size() != 1) continue;
      const int slot = slots[0];
      for (size_t oj = 0; oj < plan->steps.size(); ++oj) {
        const AccessStep& os = plan->steps[oj];
        const int ncols =
            static_cast<int>(os.table->schema().columns.size());
        if (slot >= os.bind_offset && slot < os.bind_offset + ncols) {
          info.single_slot = slot;
          info.owner_step = static_cast<int>(oj);
          info.owner_col = slot - os.bind_offset;
          break;
        }
      }
      // Correlated slots (subplan filters over outer aliases) find no owner
      // step here and stay on the per-row path.
    }
  }

  if (outer != nullptr) AnalyzeSemiJoin(db, *plan, comp);
  if (!comp.status.ok()) return comp.status;

  // Correlation analysis: outer slots this block (or any nested subplan)
  // reads. The parent memoizes EXISTS outcomes keyed by these values.
  for (int s : comp.referenced) {
    if (s < plan->first_own_slot) plan->correlated_slots.push_back(s);
  }

  // One row buffer sized to the deepest subplan serves the whole tree.
  plan->max_slots = plan->layout.total_slots;
  for (const auto& [expr, sub] : plan->subplans) {
    plan->max_slots = std::max(plan->max_slots, sub->max_slots);
  }
  return plan;
}

std::string Plan::Describe() const { return DescribeWithActuals(nullptr, 0); }

// Shared renderer: `actuals == nullptr` gives plain Describe() output;
// otherwise each step line gains an "| est=? act: ..." suffix (the estimate
// slot is filled by the cost-based planner once it lands). The two variants
// share one body so EXPLAIN and EXPLAIN ANALYZE can never drift apart.
std::string Plan::DescribeWithActuals(const StepStats* actuals,
                                      size_t n) const {
  std::ostringstream os;
  for (size_t d = 0; d < steps.size(); ++d) {
    const AccessStep& s = steps[d];
    os << s.alias << ": " << AccessPathKindName(s.path);
    if (s.path == AccessPathKind::kIndexPoint) {
      os << "(" << s.point_keys.size() << " key cols)";
    } else if (s.path == AccessPathKind::kMergeJoin) {
      os << "("
         << (s.merge_mode == MergeJoinMode::kAncestor ? "ancestor" : "range")
         << " on "
         << s.table->schema().columns[static_cast<size_t>(s.merge_column)].name
         << ", " << s.merge_order.size() << " inner rows)";
    } else if (s.path == AccessPathKind::kHashProbe) {
      os << "("
         << s.table->schema().columns[static_cast<size_t>(s.hash_column)].name
         << ")";
    }
    os << " on " << s.table->name();
    size_t nfilters = s.filters.size() - s.bitmap_sources.size();
    if (nfilters > 0 || !s.bitmap_sources.empty()) {
      os << " [" << nfilters << " filters";
      if (!s.bitmap_sources.empty()) {
        os << ", " << s.bitmap_sources.size() << " bitmap (";
        for (size_t i = 0; i < s.bitmap_filters.size(); ++i) {
          if (i > 0) os << ", ";
          os << s.bitmap_filters[i]->set_count << " set";
        }
        os << ")";
      }
      os << "]";
    }
    // Execution mode, so a regression to the scalar path is visible in
    // EXPLAIN output: every step runs vectorized. EXISTS subplans use the
    // same batch driver with 64-row batches (first-witness short-circuit +
    // memoization), hence the distinct label.
    os << (is_subplan ? " exec=vec64" : " exec=vec");
    if (actuals != nullptr && d < n) {
      const StepStats& a = actuals[d];
      os << " | est=? act: in=" << a.rows_in << " out=" << a.rows_out
         << " batches=" << a.batches;
      if (a.index_probes > 0) os << " idx_probes=" << a.index_probes;
      if (a.hash_probes > 0) os << " hash_probes=" << a.hash_probes;
      if (a.merge_rounds > 0) os << " merge_rounds=" << a.merge_rounds;
      if (a.bitmap_tests > 0) {
        os << " bitmap=" << a.bitmap_hits << "/" << a.bitmap_tests;
      }
      if (a.exists_evals > 0) os << " exists_evals=" << a.exists_evals;
      os << " time=" << a.time_us << "us";
      if (a.morsels > 0) {
        // Per-morsel skew over rows_out: min/mean/max across morsels.
        os << " morsels=" << a.morsels << " rows/morsel=" << a.min_rows
           << "/" << a.rows_out / a.morsels << "/" << a.max_rows;
      }
    }
    os << "\n";
  }
  for (const auto& [expr, sub] : subplans) {
    os << "exists-subplan"
       << (sub->semijoin_decorrelated ? " (decorrelated semi-join)" : "");
    if (actuals != nullptr) os << " (actuals attribute to the owning step)";
    os << ":\n";
    std::istringstream is(sub->Describe());
    std::string line;
    while (std::getline(is, line)) os << "  " << line << "\n";
    if (sub->semijoin_plan != nullptr) {
      os << "  semi-join build plan:\n";
      std::istringstream bs(sub->semijoin_plan->Describe());
      while (std::getline(bs, line)) os << "    " << line << "\n";
    }
  }
  return os.str();
}

}  // namespace xprel::rel
