#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "rel/key_codec.h"
#include "rel/query.h"

namespace xprel::rel {

int Layout::SlotOf(const std::string& alias, const std::string& column) const {
  for (const Entry& e : entries) {
    if (e.alias != alias) continue;
    int c = e.table->schema().ColumnIndex(column);
    if (c < 0) return -1;
    return e.offset + c;
  }
  return -1;
}

const Layout::Entry* Layout::FindAlias(const std::string& alias) const {
  for (const Entry& e : entries) {
    if (e.alias == alias) return &e;
  }
  return nullptr;
}

const char* AccessPathKindName(AccessPathKind k) {
  switch (k) {
    case AccessPathKind::kSeqScan:
      return "SeqScan";
    case AccessPathKind::kIndexPoint:
      return "IndexPoint";
    case AccessPathKind::kIndexRange:
      return "IndexRange";
    case AccessPathKind::kPrefixProbe:
      return "PrefixProbe";
    case AccessPathKind::kHashProbe:
      return "HashProbe";
    case AccessPathKind::kIndexUnion:
      return "IndexUnion";
  }
  return "?";
}

namespace {

// Splits a conjunctive WHERE tree into its AND-ed conjuncts. OR subtrees
// stay whole.
void SplitConjuncts(const SqlExpr* e, std::vector<const SqlExpr*>& out) {
  if (e == nullptr) return;
  if (e->kind == SqlExpr::Kind::kBinary && e->op == SqlExpr::BinOp::kAnd) {
    SplitConjuncts(e->args[0].get(), out);
    SplitConjuncts(e->args[1].get(), out);
    return;
  }
  out.push_back(e);
}

// Collects the aliases an expression references at the current query level.
// Aliases introduced by a nested EXISTS's own FROM are not free.
void CollectAliasRefs(const SqlExpr& e, std::set<std::string>& out) {
  switch (e.kind) {
    case SqlExpr::Kind::kColumn:
      out.insert(e.table_alias);
      return;
    case SqlExpr::Kind::kExists: {
      std::set<std::string> inner;
      if (e.subquery->where != nullptr) {
        CollectAliasRefs(*e.subquery->where, inner);
      }
      for (const SelectItem& it : e.subquery->select) {
        CollectAliasRefs(*it.expr, inner);
      }
      for (const TableRef& t : e.subquery->from) inner.erase(t.alias);
      out.insert(inner.begin(), inner.end());
      return;
    }
    default:
      for (const SqlExprPtr& a : e.args) CollectAliasRefs(*a, out);
      return;
  }
}

bool AllBound(const SqlExpr& e, const std::set<std::string>& bound) {
  std::set<std::string> refs;
  CollectAliasRefs(e, refs);
  for (const std::string& r : refs) {
    if (bound.count(r) == 0) return false;
  }
  return true;
}

// True if `e` is alias.column for the given alias; outputs the column index.
bool IsColumnOf(const SqlExpr& e, const std::string& alias, const Table& table,
                int* column) {
  if (e.kind != SqlExpr::Kind::kColumn || e.table_alias != alias) return false;
  int c = table.schema().ColumnIndex(e.column);
  if (c < 0) return false;
  *column = c;
  return true;
}

// True if `e` is Concat(alias.column, <literal>) for the given alias.
bool IsConcatOfColumn(const SqlExpr& e, const std::string& alias,
                      const Table& table, int* column) {
  if (e.kind != SqlExpr::Kind::kConcat) return false;
  return IsColumnOf(*e.args[0], alias, table, column) &&
         e.args[1]->kind == SqlExpr::Kind::kLiteral;
}

struct CandidateAccess {
  AccessStep step;
  double cost = 1e18;
  // True when the access path's key/bound expressions reference an already
  // bound alias — i.e. this is a join probe, not an independent scan. The
  // greedy ordering prefers dependent accesses so chains follow the join
  // graph instead of jumping to a seemingly cheap independent probe whose
  // follow-up joins would be half-open range scans.
  bool dependent = false;
};

// True when `e` references no table columns at all (literals only).
bool IsLiteralOnly(const SqlExpr& e) {
  std::set<std::string> refs;
  CollectAliasRefs(e, refs);
  return refs.empty();
}

// True when `e` references at least one alias from `bound`.
bool ReferencesAny(const SqlExpr& e, const std::set<std::string>& bound) {
  std::set<std::string> refs;
  CollectAliasRefs(e, refs);
  for (const std::string& r : refs) {
    if (bound.count(r) > 0) return true;
  }
  return false;
}

// Counts index entries matching a fully literal point probe, capped — a
// cheap, exact cardinality estimate available at plan time.
double EstimateLiteralPointRows(const Table& table, const BTree& index,
                                const IndexDef& def,
                                const std::vector<const SqlExpr*>& keys) {
  std::vector<Value> values;
  for (size_t k = 0; k < keys.size(); ++k) {
    if (keys[k]->kind != SqlExpr::Kind::kLiteral) return -1;
    values.push_back(keys[k]->literal);
    (void)def;
    (void)table;
  }
  std::string lo = EncodeKeyPrefixLowerBound(values);
  std::string hi = EncodeKeyPrefixUpperBound(values);
  constexpr size_t kCap = 4096;
  size_t count = 0;
  for (auto it = index.Scan(lo, hi); it.Valid() && count < kCap; it.Next()) {
    ++count;
  }
  return static_cast<double>(count);
}

// Works out the best access path for `alias` given the bound aliases.
// Every viable access is costed; the cheapest wins (ties prefer join
// probes over independent scans).
CandidateAccess ChooseAccess(const std::string& alias, const Table& table,
                             const std::vector<const SqlExpr*>& conjuncts,
                             const std::set<std::string>& bound) {
  double rows = static_cast<double>(table.row_count());
  std::vector<CandidateAccess> candidates;

  auto base_step = [&]() {
    AccessStep st;
    st.alias = alias;
    st.table = &table;
    return st;
  };

  // Conjuncts fully bound once `alias` joins.
  std::set<std::string> bound_plus = bound;
  bound_plus.insert(alias);

  // Gather per-column equality keys (col -> bound expression).
  std::vector<std::pair<int, const SqlExpr*>> equalities;
  bool has_bound_filter = false;
  std::vector<const SqlExpr*> or_conjuncts;

  for (const SqlExpr* c : conjuncts) {
    if (!AllBound(*c, bound_plus)) continue;
    std::set<std::string> refs;
    CollectAliasRefs(*c, refs);
    if (refs.count(alias) == 0) continue;
    has_bound_filter = true;

    if (c->kind == SqlExpr::Kind::kBinary && c->op == SqlExpr::BinOp::kEq) {
      int col = -1;
      if (IsColumnOf(*c->args[0], alias, table, &col) &&
          AllBound(*c->args[1], bound)) {
        equalities.push_back({col, c->args[1].get()});
      } else if (IsColumnOf(*c->args[1], alias, table, &col) &&
                 AllBound(*c->args[0], bound)) {
        equalities.push_back({col, c->args[0].get()});
      }
    } else if (c->kind == SqlExpr::Kind::kBinary &&
               c->op == SqlExpr::BinOp::kOr) {
      or_conjuncts.push_back(c);
    }
  }

  // 1) Index point probe on the longest equality prefix of some index.
  {
    const BTree* best_index = nullptr;
    const IndexDef* best_def = nullptr;
    std::vector<const SqlExpr*> best_keys;
    for (const IndexDef& def : table.schema().indexes) {
      std::vector<const SqlExpr*> keys;
      for (int ic : def.column_indexes) {
        const SqlExpr* found = nullptr;
        for (auto& [col, e] : equalities) {
          if (col == ic) {
            found = e;
            break;
          }
        }
        if (found == nullptr) break;
        keys.push_back(found);
      }
      if (!keys.empty() && keys.size() > best_keys.size()) {
        best_index = table.FindIndex(def.name, &best_def);
        best_keys = std::move(keys);
      }
    }
    if (best_index != nullptr) {
      CandidateAccess c;
      c.step = base_step();
      c.step.path = AccessPathKind::kIndexPoint;
      c.step.index = best_index;
      c.step.point_keys = best_keys;
      for (size_t k = 0; k < best_keys.size(); ++k) {
        c.step.point_key_types.push_back(
            table.schema()
                .columns[static_cast<size_t>(best_def->column_indexes[k])]
                .type);
      }
      for (const SqlExpr* k : best_keys) {
        if (ReferencesAny(*k, bound)) c.dependent = true;
      }
      bool literal_only = true;
      for (const SqlExpr* k : best_keys) {
        if (!IsLiteralOnly(*k)) literal_only = false;
      }
      if (literal_only && best_def != nullptr) {
        c.cost = 2.0 + EstimateLiteralPointRows(table, *best_index, *best_def,
                                                best_keys);
      } else {
        c.cost = 3.0;  // join probe: assumed selective
      }
      candidates.push_back(std::move(c));
    }
  }

  // 1b) OR of indexable equalities -> union of point probes (index OR
  // expansion; this is how sibling joins with several possible parent FK
  // columns stay cheap).
  for (const SqlExpr* orc : or_conjuncts) {
    std::vector<const SqlExpr*> branches;
    std::vector<const SqlExpr*> stack = {orc};
    while (!stack.empty()) {
      const SqlExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == SqlExpr::Kind::kBinary && e->op == SqlExpr::BinOp::kOr) {
        stack.push_back(e->args[0].get());
        stack.push_back(e->args[1].get());
      } else {
        branches.push_back(e);
      }
    }
    std::vector<AccessStep::UnionProbe> probes;
    bool ok = true;
    bool dependent = false;
    for (const SqlExpr* b : branches) {
      int col = -1;
      const SqlExpr* key = nullptr;
      if (b->kind == SqlExpr::Kind::kBinary && b->op == SqlExpr::BinOp::kEq) {
        if (IsColumnOf(*b->args[0], alias, table, &col) &&
            AllBound(*b->args[1], bound)) {
          key = b->args[1].get();
        } else if (IsColumnOf(*b->args[1], alias, table, &col) &&
                   AllBound(*b->args[0], bound)) {
          key = b->args[0].get();
        }
      }
      const BTree* index =
          col >= 0 ? table.FindIndexWithPrefix({col}) : nullptr;
      if (key == nullptr || index == nullptr) {
        ok = false;
        break;
      }
      if (ReferencesAny(*key, bound)) dependent = true;
      AccessStep::UnionProbe probe;
      probe.index = index;
      probe.column = col;
      probe.key = key;
      probe.key_type = table.schema().columns[static_cast<size_t>(col)].type;
      probes.push_back(std::move(probe));
    }
    if (ok && !probes.empty()) {
      CandidateAccess c;
      c.step = base_step();
      c.step.path = AccessPathKind::kIndexUnion;
      c.step.union_probes = std::move(probes);
      c.dependent = dependent;
      c.cost = 4.0 * static_cast<double>(c.step.union_probes.size());
      candidates.push_back(std::move(c));
    }
  }

  // 2) Range / prefix-probe access on an index's first column.
  for (const IndexDef& def : table.schema().indexes) {
    int first_col = def.column_indexes[0];
    const SqlExpr* lo = nullptr;
    bool lo_incl = true;
    const SqlExpr* hi = nullptr;
    bool hi_incl = true;
    const SqlExpr* probe = nullptr;
    // Strict ancestor pattern: e > A.c together with e < A.c || byte means
    // A.c is a proper Dewey prefix of e - served by prefix point probes
    // instead of an open-ended range scan.
    const SqlExpr* strict_upper = nullptr;   // e with A.c < e
    const SqlExpr* concat_bound = nullptr;   // e with e < (A.c || lit)

    for (const SqlExpr* c : conjuncts) {
      int col = -1;
      // BETWEEN forms.
      if (c->kind == SqlExpr::Kind::kBetween) {
        if (IsColumnOf(*c->args[0], alias, table, &col) && col == first_col &&
            AllBound(*c->args[1], bound) && AllBound(*c->args[2], bound)) {
          lo = c->args[1].get();
          lo_incl = true;
          hi = c->args[2].get();
          hi_incl = true;
          break;
        }
        int col2 = -1;
        if (AllBound(*c->args[0], bound) &&
            IsColumnOf(*c->args[1], alias, table, &col) && col == first_col &&
            IsConcatOfColumn(*c->args[2], alias, table, &col2) &&
            col2 == first_col) {
          probe = c->args[0].get();
          break;
        }
        continue;
      }
      if (c->kind == SqlExpr::Kind::kBinary) {
        auto set_bound = [&](SqlExpr::BinOp op, const SqlExpr* other) {
          switch (op) {
            case SqlExpr::BinOp::kGt:
              lo = other;
              lo_incl = false;
              break;
            case SqlExpr::BinOp::kGe:
              lo = other;
              lo_incl = true;
              break;
            case SqlExpr::BinOp::kLt:
              hi = other;
              hi_incl = false;
              break;
            case SqlExpr::BinOp::kLe:
              hi = other;
              hi_incl = true;
              break;
            default:
              break;
          }
        };
        auto flip = [](SqlExpr::BinOp op) {
          switch (op) {
            case SqlExpr::BinOp::kGt:
              return SqlExpr::BinOp::kLt;
            case SqlExpr::BinOp::kGe:
              return SqlExpr::BinOp::kLe;
            case SqlExpr::BinOp::kLt:
              return SqlExpr::BinOp::kGt;
            case SqlExpr::BinOp::kLe:
              return SqlExpr::BinOp::kGe;
            default:
              return op;
          }
        };
        bool is_ineq = c->op == SqlExpr::BinOp::kGt ||
                       c->op == SqlExpr::BinOp::kGe ||
                       c->op == SqlExpr::BinOp::kLt ||
                       c->op == SqlExpr::BinOp::kLe;
        if (!is_ineq) continue;
        if (IsColumnOf(*c->args[0], alias, table, &col) && col == first_col &&
            AllBound(*c->args[1], bound)) {
          set_bound(c->op, c->args[1].get());
          if (c->op == SqlExpr::BinOp::kLt) strict_upper = c->args[1].get();
        } else if (IsColumnOf(*c->args[1], alias, table, &col) &&
                   col == first_col && AllBound(*c->args[0], bound)) {
          set_bound(flip(c->op), c->args[0].get());
          if (c->op == SqlExpr::BinOp::kGt) strict_upper = c->args[0].get();
        } else if (IsConcatOfColumn(*c->args[0], alias, table, &col) &&
                   col == first_col && AllBound(*c->args[1], bound)) {
          if (c->op == SqlExpr::BinOp::kLt || c->op == SqlExpr::BinOp::kLe) {
            hi = c->args[1].get();
            hi_incl = false;
          } else {
            concat_bound = c->args[1].get();
          }
        } else if (IsConcatOfColumn(*c->args[1], alias, table, &col) &&
                   col == first_col && AllBound(*c->args[0], bound)) {
          if (c->op == SqlExpr::BinOp::kGt || c->op == SqlExpr::BinOp::kGe) {
            hi = c->args[0].get();
            hi_incl = false;
          } else {
            concat_bound = c->args[0].get();
          }
        }
      }
    }

    if (probe == nullptr && strict_upper != nullptr &&
        concat_bound != nullptr &&
        SqlToString(*strict_upper) == SqlToString(*concat_bound)) {
      probe = strict_upper;
    }
    const IndexDef* d = nullptr;
    const BTree* index = table.FindIndex(def.name, &d);
    if (probe != nullptr) {
      CandidateAccess c;
      c.step = base_step();
      c.step.path = AccessPathKind::kPrefixProbe;
      c.step.index = index;
      c.step.probe_value = probe;
      c.cost = 8.0;
      c.dependent = ReferencesAny(*probe, bound);
      candidates.push_back(std::move(c));
      continue;
    }
    if (lo != nullptr || hi != nullptr) {
      CandidateAccess c;
      c.step = base_step();
      c.step.path = AccessPathKind::kIndexRange;
      c.step.index = index;
      c.step.range_type =
          table.schema().columns[static_cast<size_t>(first_col)].type;
      c.step.range_lo = lo;
      c.step.range_lo_inclusive = lo_incl;
      c.step.range_hi = hi;
      c.step.range_hi_inclusive = hi_incl;
      c.dependent =
          (lo != nullptr && ReferencesAny(*lo, bound)) ||
          (hi != nullptr && ReferencesAny(*hi, bound));
      if (lo != nullptr && hi != nullptr) {
        c.cost = 20.0;  // bounded window: narrow
      } else {
        c.cost = 60.0 + rows / 4;  // half-open: may cover much of the table
      }
      candidates.push_back(std::move(c));
    }
  }

  // 3) Ad-hoc hash probe for unindexed string-column equijoins.
  for (auto& [col, e] : equalities) {
    if (table.schema().columns[static_cast<size_t>(col)].type !=
        ValueType::kString) {
      continue;
    }
    if (table.FindIndexWithPrefix({col}) != nullptr) continue;
    CandidateAccess c;
    c.step = base_step();
    c.step.path = AccessPathKind::kHashProbe;
    c.step.hash_column = col;
    c.step.hash_key = e;
    c.cost = 30.0;
    c.dependent = ReferencesAny(*e, bound);
    candidates.push_back(std::move(c));
  }

  // 4) Sequential scan fallback.
  {
    CandidateAccess c;
    c.step = base_step();
    c.step.path = AccessPathKind::kSeqScan;
    c.cost = has_bound_filter ? 10.0 + rows / 2 : 100.0 + rows * 2;
    candidates.push_back(std::move(c));
  }

  size_t best_i = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    const CandidateAccess& a = candidates[i];
    const CandidateAccess& b = candidates[best_i];
    if (a.cost < b.cost || (a.cost == b.cost && a.dependent && !b.dependent)) {
      best_i = i;
    }
  }
  return std::move(candidates[best_i]);
}

// Lowers SqlExpr trees into the plan's CompiledExpr arena: column references
// become integer slots, regexes/subplans become direct pointers. Shared
// subexpressions (access-path keys are subtrees of WHERE conjuncts) compile
// once. Collects every referenced slot for the correlation analysis that
// feeds EXISTS memoization.
class ExprCompiler {
 public:
  explicit ExprCompiler(Plan& plan) : plan_(plan) {}

  const CompiledExpr* Compile(const SqlExpr& e) {
    auto it = cache_.find(&e);
    if (it != cache_.end()) return it->second;
    plan_.expr_pool.emplace_back();
    CompiledExpr& c = plan_.expr_pool.back();
    cache_.emplace(&e, &c);
    c.kind = e.kind;
    c.op = e.op;
    switch (e.kind) {
      case SqlExpr::Kind::kColumn: {
        c.slot = plan_.layout.SlotOf(e.table_alias, e.column);
        if (c.slot < 0 && status.ok()) {
          status = Status::InvalidArgument("unresolvable column: " +
                                           e.table_alias + "." + e.column);
        }
        referenced.insert(c.slot);
        break;
      }
      case SqlExpr::Kind::kLiteral:
        c.literal = e.literal;
        break;
      case SqlExpr::Kind::kRegexpLike: {
        auto rit = plan_.regexes.find(&e);
        if (rit != plan_.regexes.end()) {
          c.regex = &rit->second;
        } else if (status.ok()) {
          status = Status::Internal("REGEXP_LIKE without compiled pattern");
        }
        break;
      }
      case SqlExpr::Kind::kExists: {
        auto sit = plan_.subplans.find(&e);
        if (sit != plan_.subplans.end()) {
          c.subplan = sit->second.get();
          // The subplan's free slots are (outer or own) slots of this level.
          c.correlated_slots = c.subplan->correlated_slots;
          referenced.insert(c.correlated_slots.begin(),
                            c.correlated_slots.end());
        } else if (status.ok()) {
          status = Status::Internal("EXISTS without compiled subplan");
        }
        break;
      }
      default:
        break;
    }
    for (const SqlExprPtr& a : e.args) c.args.push_back(Compile(*a));
    return &c;
  }

  Status status;
  std::set<int> referenced;

 private:
  Plan& plan_;
  std::unordered_map<const SqlExpr*, const CompiledExpr*> cache_;
};

}  // namespace

Result<std::unique_ptr<Plan>> PlanSelect(const Database& db,
                                         const SelectStmt& stmt,
                                         const Layout* outer) {
  auto plan = std::make_unique<Plan>();
  plan->stmt = &stmt;

  // Layout: outer entries first, then our FROM aliases.
  if (outer != nullptr) {
    plan->layout = *outer;
  }
  plan->first_own_entry = static_cast<int>(plan->layout.entries.size());
  if (stmt.from.empty()) {
    return Status::InvalidArgument("select with empty FROM");
  }
  for (const TableRef& ref : stmt.from) {
    const Table* table = db.FindTable(ref.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table: " + ref.table);
    }
    if (plan->layout.FindAlias(ref.alias) != nullptr) {
      return Status::InvalidArgument("duplicate alias: " + ref.alias);
    }
    plan->layout.entries.push_back(
        {ref.alias, table, plan->layout.total_slots});
    plan->layout.total_slots +=
        static_cast<int>(table->schema().columns.size());
  }

  // Conjuncts of the WHERE clause.
  std::vector<const SqlExpr*> conjuncts;
  SplitConjuncts(stmt.where.get(), conjuncts);

  // Compile regexes and subqueries appearing anywhere at this level.
  {
    std::vector<const SqlExpr*> stack;
    if (stmt.where != nullptr) stack.push_back(stmt.where.get());
    for (const SelectItem& it : stmt.select) stack.push_back(it.expr.get());
    for (const OrderByItem& ob : stmt.order_by) stack.push_back(ob.expr.get());
    while (!stack.empty()) {
      const SqlExpr* e = stack.back();
      stack.pop_back();
      if (e->kind == SqlExpr::Kind::kRegexpLike) {
        if (e->args[1]->kind != SqlExpr::Kind::kLiteral ||
            e->args[1]->literal.type() != ValueType::kString) {
          return Status::Unsupported("REGEXP_LIKE pattern must be a literal");
        }
        auto re = rex::Regex::Compile(e->args[1]->literal.AsString());
        if (!re.ok()) return re.status();
        plan->regexes.emplace(e, std::move(re).value());
      } else if (e->kind == SqlExpr::Kind::kExists) {
        auto sub = PlanSelect(db, *e->subquery, &plan->layout);
        if (!sub.ok()) return sub.status();
        plan->subplans.emplace(e, std::move(sub).value());
        continue;  // subquery internals belong to the subplan
      }
      for (const SqlExprPtr& a : e->args) stack.push_back(a.get());
    }
  }

  // Greedy join ordering.
  std::set<std::string> bound;
  for (int i = 0; i < plan->first_own_entry; ++i) {
    bound.insert(plan->layout.entries[static_cast<size_t>(i)].alias);
  }
  std::vector<const Layout::Entry*> pending;
  for (size_t i = static_cast<size_t>(plan->first_own_entry);
       i < plan->layout.entries.size(); ++i) {
    pending.push_back(&plan->layout.entries[i]);
  }

  std::vector<bool> conjunct_assigned(conjuncts.size(), false);

  while (!pending.empty()) {
    size_t best_i = 0;
    CandidateAccess best;
    bool have_best = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      CandidateAccess cand =
          ChooseAccess(pending[i]->alias, *pending[i]->table, conjuncts, bound);
      // Connectivity-first: a join probe beats any independent access, so
      // chains follow the query's join graph.
      bool better = !have_best;
      if (have_best) {
        if (cand.dependent != best.dependent) {
          better = cand.dependent;
        } else {
          better = cand.cost < best.cost ||
                   (cand.cost == best.cost &&
                    pending[i]->table->row_count() <
                        best.step.table->row_count());
        }
      }
      if (better) {
        best = std::move(cand);
        best_i = i;
        have_best = true;
      }
    }
    bound.insert(best.step.alias);
    // Assign every not-yet-assigned conjunct that is now fully bound.
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (conjunct_assigned[c]) continue;
      if (AllBound(*conjuncts[c], bound)) {
        best.step.filters.push_back(conjuncts[c]);
        conjunct_assigned[c] = true;
      }
    }
    plan->steps.push_back(std::move(best.step));
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(best_i));
  }

  // Conjuncts referencing only outer aliases (or nothing).
  for (size_t c = 0; c < conjuncts.size(); ++c) {
    if (!conjunct_assigned[c]) plan->post_filters.push_back(conjuncts[c]);
  }

  // -------------------------------------------------------------------
  // Finalize: lower every expression the executor will touch into the
  // compiled arena so evaluation never does string lookups, alias scans or
  // IndexDef recovery per row.
  // -------------------------------------------------------------------
  plan->first_own_slot =
      static_cast<size_t>(plan->first_own_entry) < plan->layout.entries.size()
          ? plan->layout.entries[static_cast<size_t>(plan->first_own_entry)]
                .offset
          : plan->layout.total_slots;

  ExprCompiler comp(*plan);
  for (const SelectItem& it : stmt.select) {
    plan->compiled_select.push_back(comp.Compile(*it.expr));
    plan->column_labels.push_back(!it.label.empty() ? it.label
                                                    : SqlToString(*it.expr));
  }
  for (const OrderByItem& ob : stmt.order_by) {
    plan->compiled_order_by.push_back(comp.Compile(*ob.expr));
  }
  // Map each ORDER BY expression onto a projected column where possible so
  // the executor can sort the projected rows in place.
  plan->order_by_mapped = !stmt.order_by.empty();
  for (const OrderByItem& ob : stmt.order_by) {
    int pos = -1;
    for (size_t i = 0; i < stmt.select.size(); ++i) {
      const SqlExpr& se = *stmt.select[i].expr;
      const SqlExpr& oe = *ob.expr;
      if (se.kind == SqlExpr::Kind::kColumn &&
          oe.kind == SqlExpr::Kind::kColumn &&
          se.table_alias == oe.table_alias && se.column == oe.column) {
        pos = static_cast<int>(i);
        break;
      }
    }
    if (pos < 0) {
      plan->order_by_mapped = false;
      plan->order_by_select_positions.clear();
      break;
    }
    plan->order_by_select_positions.push_back(pos);
  }
  for (const SqlExpr* f : plan->post_filters) {
    plan->compiled_post_filters.push_back(comp.Compile(*f));
  }
  for (AccessStep& st : plan->steps) {
    const Layout::Entry* entry = plan->layout.FindAlias(st.alias);
    assert(entry != nullptr);
    st.bind_offset = entry->offset;
    for (const SqlExpr* f : st.filters) st.cfilters.push_back(comp.Compile(*f));
    for (const SqlExpr* k : st.point_keys) {
      st.cpoint_keys.push_back(comp.Compile(*k));
    }
    if (st.range_lo != nullptr) st.crange_lo = comp.Compile(*st.range_lo);
    if (st.range_hi != nullptr) st.crange_hi = comp.Compile(*st.range_hi);
    if (st.probe_value != nullptr) {
      st.cprobe_value = comp.Compile(*st.probe_value);
    }
    if (st.hash_key != nullptr) st.chash_key = comp.Compile(*st.hash_key);
    for (AccessStep::UnionProbe& p : st.union_probes) {
      p.ckey = comp.Compile(*p.key);
    }
  }
  if (!comp.status.ok()) return comp.status;

  // Correlation analysis: outer slots this block (or any nested subplan)
  // reads. The parent memoizes EXISTS outcomes keyed by these values.
  for (int s : comp.referenced) {
    if (s < plan->first_own_slot) plan->correlated_slots.push_back(s);
  }

  // One row buffer sized to the deepest subplan serves the whole tree.
  plan->max_slots = plan->layout.total_slots;
  for (const auto& [expr, sub] : plan->subplans) {
    plan->max_slots = std::max(plan->max_slots, sub->max_slots);
  }
  return plan;
}

std::string Plan::Describe() const {
  std::ostringstream os;
  for (const AccessStep& s : steps) {
    os << s.alias << ": " << AccessPathKindName(s.path);
    if (s.path == AccessPathKind::kIndexPoint) {
      os << "(" << s.point_keys.size() << " key cols)";
    }
    os << " on " << s.table->name();
    if (!s.filters.empty()) os << " [" << s.filters.size() << " filters]";
    os << "\n";
  }
  for (const auto& [expr, sub] : subplans) {
    os << "exists-subplan:\n";
    std::istringstream is(sub->Describe());
    std::string line;
    while (std::getline(is, line)) os << "  " << line << "\n";
  }
  return os.str();
}

}  // namespace xprel::rel
