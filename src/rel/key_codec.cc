#include "rel/key_codec.h"

#include <cstring>

namespace xprel::rel {

namespace {

// Type tags; must increase in the same order as ValueType's total order.
constexpr char kTagNull = '\x01';
constexpr char kTagInt = '\x02';
constexpr char kTagDouble = '\x03';
constexpr char kTagString = '\x04';
constexpr char kTagBytes = '\x05';

void AppendBigEndian64(uint64_t v, std::string& out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void AppendEscapedString(std::string_view s, std::string& out) {
  for (char c : s) {
    if (c == '\x00') {
      out.push_back('\x00');
      out.push_back('\xFF');
    } else {
      out.push_back(c);
    }
  }
  out.push_back('\x00');
  out.push_back('\x01');
}

}  // namespace

void AppendEncodedValue(const Value& v, std::string& out) {
  switch (v.type()) {
    case ValueType::kNull:
      out.push_back(kTagNull);
      return;
    case ValueType::kInt64: {
      out.push_back(kTagInt);
      // Flip the sign bit so negative values sort below positive ones.
      uint64_t bits = static_cast<uint64_t>(v.AsInt()) ^ (1ull << 63);
      AppendBigEndian64(bits, out);
      return;
    }
    case ValueType::kDouble: {
      out.push_back(kTagDouble);
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      if (bits & (1ull << 63)) {
        bits = ~bits;  // negative: invert all bits
      } else {
        bits ^= (1ull << 63);  // positive: flip sign bit
      }
      AppendBigEndian64(bits, out);
      return;
    }
    case ValueType::kString:
      out.push_back(kTagString);
      AppendEscapedString(v.AsString(), out);
      return;
    case ValueType::kBytes:
      out.push_back(kTagBytes);
      AppendEscapedString(v.AsBytes(), out);
      return;
  }
}

void AppendEncodedBytes(std::string_view bytes, std::string& out) {
  out.push_back(kTagBytes);
  AppendEscapedString(bytes, out);
}

std::string EncodeKey(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) AppendEncodedValue(v, out);
  return out;
}

std::string EncodeKeyPrefixLowerBound(const std::vector<Value>& values) {
  return EncodeKey(values);
}

std::string EncodeKeyPrefixUpperBound(const std::vector<Value>& values) {
  // Column encodings never contain the byte 0xFF right after a complete
  // value (the next byte is always a type tag <= 0x05), so appending 0xFF
  // yields a strict upper bound for every key extending this prefix.
  std::string out = EncodeKey(values);
  out.push_back('\xFF');
  return out;
}

void EncodeKeyPrefixLowerBoundTo(const std::vector<Value>& values,
                                 std::string& out) {
  out.clear();
  for (const Value& v : values) AppendEncodedValue(v, out);
}

void EncodeKeyPrefixUpperBoundTo(const std::vector<Value>& values,
                                 std::string& out) {
  EncodeKeyPrefixLowerBoundTo(values, out);
  BumpToPrefixUpperBound(out);
}

}  // namespace xprel::rel
