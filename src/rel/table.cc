#include "rel/table.h"

#include <sstream>

#include "rel/key_codec.h"

namespace xprel::rel {

int TableSchema::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  cols_.resize(schema_.columns.size());
  indexes_.reserve(schema_.indexes.size());
  for (size_t i = 0; i < schema_.indexes.size(); ++i) {
    indexes_.push_back(std::make_unique<BTree>());
  }
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("table " + schema_.name + ": row has " +
                                   std::to_string(row.size()) +
                                   " values, expected " +
                                   std::to_string(schema_.columns.size()));
  }
  RowId id = static_cast<RowId>(row_count_);
  for (size_t i = 0; i < schema_.indexes.size(); ++i) {
    const IndexDef& def = schema_.indexes[i];
    std::string key;
    for (int c : def.column_indexes) {
      AppendEncodedValue(row[static_cast<size_t>(c)], key);
    }
    if (def.unique && !indexes_[i]->Lookup(key).empty()) {
      return Status::InvalidArgument("table " + schema_.name +
                                     ": duplicate key in unique index " +
                                     def.name);
    }
    indexes_[i]->Insert(key, id);
  }
  for (size_t c = 0; c < row.size(); ++c) {
    ColumnData& col = cols_[c];
    auto [it, inserted] =
        col.intern.try_emplace(row[c], static_cast<uint32_t>(col.dict.size()));
    if (inserted) col.dict.push_back(std::move(row[c]));
    col.codes.push_back(it->second);
  }
  ++row_count_;
  ++version_;
  return Status::Ok();
}

std::string Table::IndexKeyOfRow(size_t i, RowId id) const {
  std::string key;
  for (int c : schema_.indexes[i].column_indexes) {
    AppendEncodedValue(at(id, static_cast<size_t>(c)), key);
  }
  return key;
}

Status Table::Delete(RowId id) {
  if (static_cast<size_t>(id) >= row_count_) {
    return Status::InvalidArgument("table " + schema_.name + ": delete of " +
                                   std::to_string(id) + " out of range");
  }
  if (row_dead(id)) {
    return Status::InvalidArgument("table " + schema_.name + ": row " +
                                   std::to_string(id) + " already deleted");
  }
  for (size_t i = 0; i < schema_.indexes.size(); ++i) {
    indexes_[i]->Delete(IndexKeyOfRow(i, id), id);
  }
  size_t w = static_cast<size_t>(id) >> 6;
  if (w >= dead_.size()) dead_.resize(w + 1, 0);
  dead_[w] |= uint64_t{1} << (id & 63);
  ++dead_count_;
  ++version_;
  return Status::Ok();
}

void Table::Compact() {
  if (dead_count_ == 0) return;
  // Re-intern every live row into fresh column storage; dictionary codes
  // referenced only by dead rows disappear with them.
  std::vector<ColumnData> fresh(cols_.size());
  for (RowId id = 0; id < static_cast<RowId>(row_count_); ++id) {
    if (row_dead(id)) continue;
    for (size_t c = 0; c < cols_.size(); ++c) {
      ColumnData& col = fresh[c];
      const Value& v = at(id, c);
      auto [it, inserted] =
          col.intern.try_emplace(v, static_cast<uint32_t>(col.dict.size()));
      if (inserted) col.dict.push_back(v);
      col.codes.push_back(it->second);
    }
  }
  cols_ = std::move(fresh);
  row_count_ -= dead_count_;
  dead_count_ = 0;
  dead_.clear();
  for (size_t i = 0; i < schema_.indexes.size(); ++i) {
    auto rebuilt = std::make_unique<BTree>();
    for (RowId id = 0; id < static_cast<RowId>(row_count_); ++id) {
      rebuilt->Insert(IndexKeyOfRow(i, id), id);
    }
    indexes_[i] = std::move(rebuilt);
  }
  ++version_;
}

Row Table::ReadRow(RowId id) const {
  Row row;
  row.reserve(cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) row.push_back(at(id, c));
  return row;
}

Result<RowId> Table::RewriteRow(RowId id, Row row) {
  XPREL_RETURN_IF_ERROR(Delete(id));
  XPREL_RETURN_IF_ERROR(Insert(std::move(row)));
  return static_cast<RowId>(row_count_ - 1);
}

Table::Content Table::ExportContent() const {
  Content out;
  out.columns.reserve(cols_.size());
  for (const ColumnData& col : cols_) {
    Content::Column c;
    c.dict = col.dict;
    c.codes = col.codes;
    out.columns.push_back(std::move(c));
  }
  out.row_count = row_count_;
  out.dead_words = dead_;
  return out;
}

Status Table::RestoreContent(Content content) {
  auto reject = [this](const std::string& what) {
    cols_.assign(schema_.columns.size(), ColumnData{});
    row_count_ = 0;
    dead_count_ = 0;
    dead_.clear();
    for (size_t i = 0; i < indexes_.size(); ++i) {
      indexes_[i] = std::make_unique<BTree>();
    }
    ++version_;
    return Status::InvalidArgument("table " + schema_.name + ": " + what);
  };
  if (content.columns.size() != schema_.columns.size()) {
    return reject("snapshot has " + std::to_string(content.columns.size()) +
                  " columns, schema has " +
                  std::to_string(schema_.columns.size()));
  }
  const size_t rows = static_cast<size_t>(content.row_count);
  for (size_t c = 0; c < content.columns.size(); ++c) {
    const Content::Column& col = content.columns[c];
    if (col.codes.size() != rows) {
      return reject("column " + schema_.columns[c].name + " has " +
                    std::to_string(col.codes.size()) + " codes for " +
                    std::to_string(rows) + " rows");
    }
    for (uint32_t code : col.codes) {
      if (code >= col.dict.size()) {
        return reject("column " + schema_.columns[c].name +
                      " code out of dictionary range");
      }
    }
    const ValueType want = schema_.columns[c].type;
    for (const Value& v : col.dict) {
      if (v.type() != want && v.type() != ValueType::kNull) {
        return reject("column " + schema_.columns[c].name +
                      " dictionary value of type " + ValueTypeName(v.type()) +
                      ", schema says " + ValueTypeName(want));
      }
    }
  }
  if (content.dead_words.size() > (rows + 63) / 64) {
    return reject("tombstone bitmap wider than the row count");
  }
  size_t dead = 0;
  for (size_t w = 0; w < content.dead_words.size(); ++w) {
    uint64_t word = content.dead_words[w];
    for (int b = 0; b < 64; ++b) {
      if (((word >> b) & 1) == 0) continue;
      if (w * 64 + static_cast<size_t>(b) >= rows) {
        return reject("tombstone bit beyond the row count");
      }
      ++dead;
    }
  }

  cols_.assign(schema_.columns.size(), ColumnData{});
  for (size_t c = 0; c < content.columns.size(); ++c) {
    ColumnData& col = cols_[c];
    col.dict = std::move(content.columns[c].dict);
    col.codes = std::move(content.columns[c].codes);
    for (uint32_t i = 0; i < col.dict.size(); ++i) {
      col.intern.try_emplace(col.dict[i], i);
    }
  }
  row_count_ = rows;
  dead_ = std::move(content.dead_words);
  dead_count_ = dead;
  for (size_t i = 0; i < schema_.indexes.size(); ++i) {
    auto rebuilt = std::make_unique<BTree>();
    const bool unique = schema_.indexes[i].unique;
    for (RowId id = 0; id < static_cast<RowId>(row_count_); ++id) {
      if (row_dead(id)) continue;
      std::string key = IndexKeyOfRow(i, id);
      if (unique && !rebuilt->Lookup(key).empty()) {
        return reject("duplicate key in unique index " +
                      schema_.indexes[i].name);
      }
      rebuilt->Insert(std::move(key), id);
    }
    indexes_[i] = std::move(rebuilt);
  }
  ++version_;
  return Status::Ok();
}

const BTree* Table::FindIndexWithPrefix(const std::vector<int>& columns,
                                        const IndexDef** def) const {
  for (size_t i = 0; i < schema_.indexes.size(); ++i) {
    const IndexDef& d = schema_.indexes[i];
    if (d.column_indexes.size() < columns.size()) continue;
    bool match = true;
    for (size_t c = 0; c < columns.size(); ++c) {
      if (d.column_indexes[c] != columns[c]) {
        match = false;
        break;
      }
    }
    if (match) {
      if (def != nullptr) *def = &d;
      return indexes_[i].get();
    }
  }
  return nullptr;
}

const BTree* Table::FindIndex(std::string_view index_name,
                              const IndexDef** def) const {
  for (size_t i = 0; i < schema_.indexes.size(); ++i) {
    if (schema_.indexes[i].name == index_name) {
      if (def != nullptr) *def = &schema_.indexes[i];
      return indexes_[i].get();
    }
  }
  return nullptr;
}

size_t Table::TotalIndexEntries() const {
  size_t n = 0;
  for (const auto& idx : indexes_) n += idx->size();
  return n;
}

Result<Table*> Database::CreateTable(TableSchema schema) {
  std::string name = schema.name;
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(std::move(name), std::move(table));
  return raw;
}

Table* Database::FindTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<const Table*> Database::tables() const {
  std::vector<const Table*> out;
  out.reserve(tables_.size());
  for (const auto& [_, t] : tables_) out.push_back(t.get());
  return out;
}

std::string Database::DescribeStats() const {
  std::ostringstream os;
  size_t total_rows = 0;
  for (const auto& [name, t] : tables_) {
    os << "  " << name << ": " << t->row_count() << " rows, "
       << t->schema().columns.size() << " cols, "
       << t->schema().indexes.size() << " indexes\n";
    total_rows += t->row_count();
  }
  os << "  total: " << tables_.size() << " tables, " << total_rows
     << " rows\n";
  return os.str();
}

}  // namespace xprel::rel
