#ifndef XPREL_REL_PARALLEL_H_
#define XPREL_REL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/task_runner.h"
#include "rel/btree.h"

namespace xprel::rel {

// A half-open row-id interval [lo, hi) of one base table. Row ids are
// assigned in document order by the shredder, so a contiguous RowId range
// IS a Dewey range — partitioning by row id partitions by Dewey prefix
// without looking at a single key.
struct MorselRange {
  RowId lo = 0;
  RowId hi = 0;
  size_t rows() const { return static_cast<size_t>(hi - lo); }
};

// Morsel sizing. ~64K rows keeps a morsel's working set (row-id columns,
// filter scratch, output batch) around a few hundred KB — large enough to
// amortize per-morsel setup, small enough that work-stealing balances skew.
inline constexpr size_t kMorselTargetRows = 64 * 1024;
// Below this many rows per shard, splitting costs more than it buys.
inline constexpr size_t kMorselMinRows = 4096;

// Splits [0, rows) into Dewey-range morsels: enough shards to aim at
// kMorselTargetRows each, but at least `parallelism * 4` shards (when the
// table can afford kMorselMinRows per shard) so the dispenser has slack to
// balance uneven morsels across threads. Returns a single range covering
// the whole table when sharding isn't worth it (small table or
// parallelism <= 1).
std::vector<MorselRange> ComputeMorselRanges(size_t rows, int parallelism);

// What RunMorsels actually did, for QueryStats/metrics.
struct ParallelRunStats {
  size_t morsels = 0;  // ranges dispatched (scheduled + caller-run)
  size_t steals = 0;   // morsels executed by a thread other than the caller
  size_t threads = 0;  // distinct threads that ran at least one morsel
};

// Runs `body(i)` for every i in [0, total) across the caller plus up to
// `parallelism - 1` pool threads obtained from `runner` (nullable: serial).
// Scheduling is a shared atomic dispenser — each thread grabs the next
// unclaimed index until none remain — so skewed morsels self-balance.
// Submission failures are benign (caller-runs contract): the caller always
// drains the dispenser itself, so completion never depends on the pool
// accepting anything, and a pool thread calling RunMorsels nested inside a
// task can never deadlock. Blocks until every dispatched body returned.
//
// `body` must be safe to call concurrently for distinct indices and must
// not throw.
ParallelRunStats RunMorsels(size_t total, int parallelism, TaskRunner* runner,
                            const std::function<void(size_t)>& body);

}  // namespace xprel::rel

#endif  // XPREL_REL_PARALLEL_H_
