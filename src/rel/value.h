#ifndef XPREL_REL_VALUE_H_
#define XPREL_REL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace xprel::rel {

// Column / value types supported by the engine. kBytes is an uninterpreted
// binary string (used for Dewey positions); it compares byte-wise
// lexicographically, which is exactly the comparison the paper's Table 2
// conditions need.
enum class ValueType : uint8_t {
  kNull,
  kInt64,
  kDouble,
  kString,
  kBytes,
};

const char* ValueTypeName(ValueType t);

// A dynamically typed SQL value. Small, copyable, ordered.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(std::in_place_index<1>, v)); }
  static Value Real(double v) { return Value(Rep(std::in_place_index<2>, v)); }
  static Value Str(std::string v) {
    return Value(Rep(std::in_place_index<3>, std::move(v)));
  }
  static Value Bytes(std::string v) {
    return Value(Rep(std::in_place_index<4>, std::move(v)));
  }

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t AsInt() const { return std::get<1>(rep_); }
  double AsDouble() const { return std::get<2>(rep_); }
  const std::string& AsString() const { return std::get<3>(rep_); }
  const std::string& AsBytes() const { return std::get<4>(rep_); }

  // The string payload of either a kString or kBytes value.
  const std::string& AsStringLike() const {
    return type() == ValueType::kString ? std::get<3>(rep_) : std::get<4>(rep_);
  }

  // Numeric view with implicit coercion: ints and doubles convert; strings
  // parse (nullopt if unparseable); null and bytes yield nullopt. This is
  // the engine's analogue of SQL implicit casts, needed for predicates like
  // `year >= 1994` over text columns.
  std::optional<double> ToNumber() const;

  // String view: numbers format, strings pass through; nullopt for null.
  std::optional<std::string> ToText() const;

  // SQL literal rendering used by the SQL printer: 42, 3.5, 'abc',
  // HEXTORAW('01ab').
  std::string ToSqlLiteral() const;
  // Debug rendering (no quotes).
  std::string ToDebugString() const;

  // Total order used by ORDER BY, DISTINCT and index keys: null first, then
  // by type, then by value. (SQL comparison semantics with coercion live in
  // expr_eval, not here.)
  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator<(const Value& a, const Value& b);

 private:
  using Rep =
      std::variant<std::monostate, int64_t, double, std::string, std::string>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

using Row = std::vector<Value>;

// Hash functors for hash-based joins, DISTINCT and UNION dedup. Consistent
// with operator== (type participates: Str("a") != Bytes("a")).
struct ValueHash {
  size_t operator()(const Value& v) const;
};
struct RowHash {
  size_t operator()(const Row& r) const;
};

}  // namespace xprel::rel

#endif  // XPREL_REL_VALUE_H_
