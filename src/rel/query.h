#ifndef XPREL_REL_QUERY_H_
#define XPREL_REL_QUERY_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rel/sql_ast.h"
#include "rel/table.h"
#include "rex/regex.h"

namespace xprel::rel {

// ---------------------------------------------------------------------------
// Layout: slot assignment for the aliases of a (possibly nested) query.
// ---------------------------------------------------------------------------

// Execution rows are full-width: one slot per column of every alias in the
// layout, in FROM order; subquery layouts extend their outer layout so
// correlated expressions resolve naturally.
struct Layout {
  struct Entry {
    std::string alias;
    const Table* table;
    int offset;  // first slot of this alias's columns
  };
  std::vector<Entry> entries;
  int total_slots = 0;

  // Slot of alias.column, or -1.
  int SlotOf(const std::string& alias, const std::string& column) const;
  const Entry* FindAlias(const std::string& alias) const;
};

// ---------------------------------------------------------------------------
// Physical plan
// ---------------------------------------------------------------------------

// How one alias's rows are enumerated given the already-bound prefix row.
enum class AccessPathKind {
  kSeqScan,      // all rows
  kIndexPoint,   // index equality probe on key exprs
  kIndexRange,   // index range scan on the first index column
  kPrefixProbe,  // ancestor probe: index point lookups on every Dewey prefix
                 // of a bound value (see planner.cc)
  kHashProbe,    // ad-hoc hash table on a column, built lazily
  kIndexUnion,   // OR of indexable equalities: probe each, union the rows
};

const char* AccessPathKindName(AccessPathKind k);

struct Plan;

// One pipeline step: binds the rows of `alias` and applies `filters`.
struct AccessStep {
  std::string alias;
  const Table* table = nullptr;
  AccessPathKind path = AccessPathKind::kSeqScan;

  // kIndexPoint / kIndexRange / kPrefixProbe
  const BTree* index = nullptr;

  // kIndexPoint: expressions (over bound slots) for each key column.
  std::vector<const SqlExpr*> point_keys;

  // kIndexRange bounds on the first index column; null = unbounded.
  const SqlExpr* range_lo = nullptr;
  bool range_lo_inclusive = true;
  const SqlExpr* range_hi = nullptr;
  bool range_hi_inclusive = true;
  // When set, the upper bound expression is Concat(col, byte) and the bound
  // value must be extended with that byte after evaluation.
  // (Both bounds are plain expressions evaluated on the bound row.)

  // kPrefixProbe: expression whose value's Dewey prefixes are probed.
  const SqlExpr* probe_value = nullptr;

  // kHashProbe: column (index into table schema) and the bound expression
  // whose value is looked up.
  int hash_column = -1;
  const SqlExpr* hash_key = nullptr;

  // kIndexUnion: one single-column probe per OR branch.
  struct UnionProbe {
    const BTree* index = nullptr;
    int column = -1;            // for key coercion
    const SqlExpr* key = nullptr;
  };
  std::vector<UnionProbe> union_probes;

  // Residual conjuncts evaluated once this alias is bound. Every conjunct of
  // the WHERE clause appears in exactly one step's filter list (or in the
  // plan's post_filters), so access paths may safely over-approximate.
  std::vector<const SqlExpr*> filters;
};

// A compiled SELECT block. Owns compiled regexes and subquery plans; borrows
// the SqlExpr tree (the Plan must not outlive the SelectStmt it was built
// from).
struct Plan {
  const SelectStmt* stmt = nullptr;
  Layout layout;        // outer layout (if correlated) + own aliases
  int first_own_entry = 0;  // entries before this belong to the outer query
  std::vector<AccessStep> steps;

  // Conjuncts that reference no alias at all (constant folding edge case).
  std::vector<const SqlExpr*> post_filters;

  // Compiled artifacts keyed by expression node.
  std::unordered_map<const SqlExpr*, rex::Regex> regexes;
  std::unordered_map<const SqlExpr*, std::unique_ptr<Plan>> subplans;

  // Human-readable plan, one step per line — used in tests and EXPLAIN-style
  // debugging.
  std::string Describe() const;
};

// Compiles a SELECT against the database. `outer` (nullable) is the layout
// of the enclosing query for correlated subqueries.
Result<std::unique_ptr<Plan>> PlanSelect(const Database& db,
                                         const SelectStmt& stmt,
                                         const Layout* outer);

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

struct QueryStats {
  size_t rows_scanned = 0;      // rows enumerated by access paths
  size_t index_probes = 0;      // point/range/prefix index operations
  size_t subquery_evals = 0;    // EXISTS executions
  size_t output_rows = 0;
};

struct QueryResult {
  std::vector<std::string> column_labels;
  std::vector<Row> rows;
};

// Executes a compiled plan. The result honours DISTINCT and ORDER BY.
Result<QueryResult> ExecutePlan(const Plan& plan, QueryStats* stats);

// Convenience: plan + execute a full query (UNION of selects). UNION applies
// set semantics; ORDER BY of the first block orders the combined result (the
// translators emit the same ORDER BY on every block).
Result<QueryResult> ExecuteQuery(const Database& db, const SqlQuery& query,
                                 QueryStats* stats = nullptr);
Result<QueryResult> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                                  QueryStats* stats = nullptr);

}  // namespace xprel::rel

#endif  // XPREL_REL_QUERY_H_
