#ifndef XPREL_REL_QUERY_H_
#define XPREL_REL_QUERY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_budget.h"
#include "common/result.h"
#include "common/task_runner.h"
#include "common/trace.h"
#include "rel/sql_ast.h"
#include "rel/table.h"
#include "rex/regex.h"

namespace xprel::rel {

// ---------------------------------------------------------------------------
// Layout: slot assignment for the aliases of a (possibly nested) query.
// ---------------------------------------------------------------------------

// Execution rows are full-width: one slot per column of every alias in the
// layout, in FROM order; subquery layouts extend their outer layout so
// correlated expressions resolve naturally.
struct Layout {
  struct Entry {
    std::string alias;
    const Table* table;
    int offset;  // first slot of this alias's columns
  };
  std::vector<Entry> entries;
  int total_slots = 0;

  // Slot of alias.column, or -1.
  int SlotOf(const std::string& alias, const std::string& column) const;
  const Entry* FindAlias(const std::string& alias) const;
};

// ---------------------------------------------------------------------------
// Physical plan
// ---------------------------------------------------------------------------

// How one alias's rows are enumerated given the already-bound prefix row.
enum class AccessPathKind {
  kSeqScan,      // all rows
  kIndexPoint,   // index equality probe on key exprs
  kIndexRange,   // index range scan on the first index column
  kPrefixProbe,  // ancestor probe: index point lookups on every Dewey prefix
                 // of a bound value (see planner.cc)
  kHashProbe,    // equijoin against a hash table on a column, built once per
                 // execution and probed per outer row
  kIndexUnion,   // OR of indexable equalities: probe each, union the rows
  kMergeJoin,    // Dewey-ordered merge: batch the outer rows, sort them by
                 // the join key, and sweep the inner rows (pre-sorted at
                 // plan time) in one synchronized pass
};

// The two theta-join shapes of the paper's Table 2 that the merge operator
// serves. kAncestor matches inner rows whose column value is a proper byte
// prefix of the outer key (ancestor axes); kRange matches inner rows inside
// a per-outer-row [lo, hi] window (descendant and order axes).
enum class MergeJoinMode {
  kAncestor,
  kRange,
};

const char* AccessPathKindName(AccessPathKind k);

struct Plan;
struct StepStats;

// A per-RowId bitset over one table, materialized at plan time. The planner
// rewrites REGEXP_LIKE(alias.col, 'literal') step filters over small
// relations (the Paths tables) into bitmap membership: the regex runs once
// per distinct row at plan time instead of once per enumerated row at
// execution time, and the bitmap is cached with the plan (so a cached query
// never re-runs its path regexes at all).
struct RowBitmap {
  std::vector<uint64_t> words;
  size_t set_count = 0;  // number of matching rows, for EXPLAIN output

  void Reset(size_t rows) {
    words.assign((rows + 63) / 64, 0);
    set_count = 0;
  }
  void Set(RowId rid) {
    words[rid >> 6] |= uint64_t{1} << (rid & 63);
    ++set_count;
  }
  bool Test(RowId rid) const {
    return (words[rid >> 6] >> (rid & 63)) & 1;
  }
};

// A SqlExpr lowered into its executable form at plan time: column references
// are integer slots, regexes/subplans are direct pointers, and EXISTS nodes
// carry the list of outer slots their subplan depends on (the memoization
// key). The executor never touches the SqlExpr tree.
struct CompiledExpr {
  SqlExpr::Kind kind = SqlExpr::Kind::kLiteral;
  SqlExpr::BinOp op = SqlExpr::BinOp::kEq;

  int slot = -1;                          // kColumn: resolved layout slot
  Value literal;                          // kLiteral
  std::vector<const CompiledExpr*> args;  // same arity as the SqlExpr
  const rex::Regex* regex = nullptr;      // kRegexpLike (owned by the Plan)
  const Plan* subplan = nullptr;          // kExists (owned by the Plan)
  // kExists: slots of the enclosing layout the subplan reads — the EXISTS
  // outcome is a pure function of these values, so it can be memoized.
  std::vector<int> correlated_slots;
};

// One pipeline step: binds the rows of `alias` and applies `filters`.
// The SqlExpr-typed fields are what the planner reasons about (and what
// Describe() prints); the planner finalizes each step by resolving the
// compiled twins (`c*` fields, `bind_offset`, key column types) that the
// executor uses exclusively.
struct AccessStep {
  std::string alias;
  const Table* table = nullptr;
  AccessPathKind path = AccessPathKind::kSeqScan;

  // Layout offset of `alias` (slot of its first column).
  int bind_offset = -1;

  // kIndexPoint / kIndexRange / kPrefixProbe
  const BTree* index = nullptr;

  // kIndexPoint: expressions (over bound slots) for each key column.
  std::vector<const SqlExpr*> point_keys;
  std::vector<const CompiledExpr*> cpoint_keys;
  // Storage type of each key column (for plan-time-resolved coercion).
  std::vector<ValueType> point_key_types;

  // kIndexRange bounds on the first index column; null = unbounded.
  const SqlExpr* range_lo = nullptr;
  bool range_lo_inclusive = true;
  const SqlExpr* range_hi = nullptr;
  bool range_hi_inclusive = true;
  const CompiledExpr* crange_lo = nullptr;
  const CompiledExpr* crange_hi = nullptr;
  ValueType range_type = ValueType::kNull;  // first index column's type
  // (Both bounds are plain expressions evaluated on the bound row.)

  // kPrefixProbe: expression whose value's Dewey prefixes are probed.
  const SqlExpr* probe_value = nullptr;
  const CompiledExpr* cprobe_value = nullptr;

  // kHashProbe: column (index into table schema) and the bound expression
  // whose value is looked up. The table is keyed by the order-preserving
  // encoding of the column value; probes coerce to `hash_key_type` first,
  // mirroring kIndexPoint's key semantics.
  int hash_column = -1;
  const SqlExpr* hash_key = nullptr;
  const CompiledExpr* chash_key = nullptr;
  ValueType hash_key_type = ValueType::kNull;

  // kMergeJoin: join column (index into table schema) and the inner row
  // order, sorted by that column's encoded key at plan time (via an index
  // walk). kAncestor mode keys the outer side on `cprobe_value`; kRange mode
  // reuses the crange_* bounds. The original conjuncts stay in `cfilters`,
  // so the merge may over-approximate safely.
  MergeJoinMode merge_mode = MergeJoinMode::kAncestor;
  int merge_column = -1;
  std::vector<RowId> merge_order;

  // Plan-time bitmap filters (see RowBitmap): tested on the row id before
  // the row is even bound. Owned by the Plan; `bitmap_sources` keeps the
  // originating conjuncts for EXPLAIN output.
  std::vector<const RowBitmap*> bitmap_filters;
  std::vector<const SqlExpr*> bitmap_sources;

  // kIndexUnion: one single-column probe per OR branch.
  struct UnionProbe {
    const BTree* index = nullptr;
    int column = -1;                      // position in the table schema
    const SqlExpr* key = nullptr;
    const CompiledExpr* ckey = nullptr;
    ValueType key_type = ValueType::kNull;  // column's type, for coercion
  };
  std::vector<UnionProbe> union_probes;

  // Residual conjuncts evaluated once this alias is bound. Every conjunct of
  // the WHERE clause appears in exactly one step's filter list (or in the
  // plan's post_filters), so access paths may safely over-approximate.
  std::vector<const SqlExpr*> filters;
  std::vector<const CompiledExpr*> cfilters;

  // Plan-time classification of each cfilter (parallel to `cfilters`),
  // resolved once so the batch executor can pick its filter strategy without
  // walking the expression tree per execution. A filter that reads exactly
  // one column slot (and no subplan) is evaluated once per dictionary code
  // of that column instead of once per row.
  struct FilterInfo {
    int single_slot = -1;  // the only slot read, or -1 if several / none
    int owner_step = -1;   // step index owning single_slot
    int owner_col = -1;    // column of single_slot in the owner's table
    bool has_exists = false;  // contains an EXISTS: always row-at-a-time
  };
  std::vector<FilterInfo> cfilter_info;
};

// A compiled SELECT block. Owns compiled regexes, subquery plans and the
// lowered expression pool; borrows the SqlExpr tree (the Plan must not
// outlive the SelectStmt it was built from).
struct Plan {
  const SelectStmt* stmt = nullptr;
  Layout layout;        // outer layout (if correlated) + own aliases
  int first_own_entry = 0;  // entries before this belong to the outer query
  // First slot owned by this block; slots below it belong to the outer query.
  int first_own_slot = 0;
  // Row-buffer width needed to execute this plan including every nested
  // subplan (subquery layouts extend their outer layout, so one buffer
  // serves the whole tree and EXISTS evaluation never copies rows).
  int max_slots = 0;
  std::vector<AccessStep> steps;

  // Conjuncts that reference no alias of this block (outer references or
  // constant folding edge case).
  std::vector<const SqlExpr*> post_filters;
  std::vector<const CompiledExpr*> compiled_post_filters;

  // Lowered SELECT list and ORDER BY expressions.
  std::vector<const CompiledExpr*> compiled_select;
  std::vector<const CompiledExpr*> compiled_order_by;

  // Result column labels, rendered once at plan time (SqlToString per
  // execution is measurable on UNION queries with many blocks).
  std::vector<std::string> column_labels;

  // When every ORDER BY expression is also a projected column, their
  // positions in the SELECT list; the executor then sorts the projected
  // rows directly instead of materializing a separate sort key per row.
  // order_by_mapped distinguishes "mapped" from "no ORDER BY at all".
  std::vector<int> order_by_select_positions;
  bool order_by_mapped = false;

  // Outer slots referenced anywhere in this block (including by nested
  // subplans); parents use this as the EXISTS memoization key.
  std::vector<int> correlated_slots;

  // True for EXISTS subplans: they run row-at-a-time (first-witness
  // short-circuit + memoization beat batching there), while every top-level
  // plan — including semi-join build plans — runs vectorized. Describe()
  // reports the mode per step.
  bool is_subplan = false;

  // ---- Decorrelated EXISTS (build-once semi-join) ----
  // An EXISTS subplan whose every correlated conjunct is either an equality
  // (inner.col = outer-expr) or a Dewey prefix-extension triple
  // (inner.col > e AND inner.col < e || 0xff [AND LENGTH = LENGTH(e)+c])
  // is evaluated as membership in a key set built once per execution,
  // instead of running the subplan per outer row. The set is seeded by
  // executing `semijoin_plan` — this sub-select with the correlated
  // conjuncts removed and the inner key columns projected — once. This is
  // what lets the EXISTS cache actually hit: the per-outer-row memo keyed
  // on correlated slot values almost never repeats (Dewey positions are
  // unique), but the semi-join set is shared by every outer row.
  struct SemiJoinKey {
    int select_pos = -1;                   // column in semijoin_plan's result
    const CompiledExpr* outer = nullptr;   // outer-side key expression
    ValueType inner_type = ValueType::kNull;
    // Bytes stripped off the inner value before keying: 0 = exact equality;
    // > 0 = inner is an extension of the outer key by exactly that many
    // bytes (child-at-distance); -1 = any proper extension (descendant) —
    // every proper prefix of the inner value is inserted as a key.
    int strip_suffix = 0;
    // Orientation: false = the inner value extends the outer key (the strip
    // applies while building); true = the OUTER value extends the inner key,
    // so `strip_suffix` is applied to the outer value at probe time instead
    // (parent/ancestor-of-outer shapes). Only fixed strips are decorrelated
    // in this orientation.
    bool strip_outer = false;
  };
  bool semijoin_decorrelated = false;
  std::vector<SemiJoinKey> semijoin_keys;
  std::unique_ptr<SelectStmt> semijoin_stmt;  // owns the build plan's AST
  std::unique_ptr<Plan> semijoin_plan;        // uncorrelated build plan

  // Compiled artifacts keyed by expression node.
  std::unordered_map<const SqlExpr*, rex::Regex> regexes;
  std::unordered_map<const SqlExpr*, std::unique_ptr<Plan>> subplans;

  // Arena for plan-time row bitmaps (deque: stable addresses).
  std::deque<RowBitmap> bitmaps;

  // Arena for lowered expressions (deque: stable addresses).
  std::deque<CompiledExpr> expr_pool;

  // Human-readable plan, one step per line — used in tests and EXPLAIN-style
  // debugging.
  std::string Describe() const;

  // Describe() annotated with per-step actuals from an execution trace:
  // `steps` is an array of `n` StepStats parallel to this plan's steps (as
  // produced by ExecutePlannedQueryChunks with an ExecTrace). Each step line
  // gains an "est=? act: ..." suffix — the estimate slot stays "?" until the
  // cost-based planner lands and fills it. EXISTS subplan and semi-join
  // build lines render unannotated (their work is attributed to the owning
  // step). Extra array entries beyond the plan's steps are ignored.
  std::string DescribeWithActuals(const StepStats* steps, size_t n) const;
};

// Compiles a SELECT against the database. `outer` (nullable) is the layout
// of the enclosing query for correlated subqueries.
Result<std::unique_ptr<Plan>> PlanSelect(const Database& db,
                                         const SelectStmt& stmt,
                                         const Layout* outer);

// Index of the step the morsel scheduler partitions this plan on: the
// outermost shardable access path — seq scan, hash probe, or merge join
// over a table big enough to split (outermost, so downstream merge-join
// sweeps shard by outer Dewey range with per-shard frontiers). Returns -1
// when every step is too small or point-shaped and the plan runs serial.
// Used by ExplainPlan and by the executor's parallel dispatch.
int PartitionStep(const Plan& plan);

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// Cooperative interruption of one execution: an optional cancellation flag
// (typically owned by a serving layer's CancelToken) and an optional
// absolute deadline. The executor samples both every `check_interval`
// enumerated rows — in sequential scans, index probes, hash builds and
// merge sweeps alike — and unwinds with Status::Cancelled /
// Status::DeadlineExceeded instead of a result. The object is read-only to
// the executor and may be shared across the UNION blocks of one query; it
// must outlive the execution.
// Rows per executor batch when ExecControl does not override it. 1K rows
// keeps a batch's row-id columns and projection scratch comfortably inside
// L2 while amortizing per-batch costs (control probe, budget charge, fault
// point) to noise.
inline constexpr uint32_t kDefaultBatchSize = 1024;

struct ExecControl {
  const std::atomic<bool>* cancel = nullptr;  // set to true to cancel
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  // Rows enumerated between checks. Batch execution accumulates whole-batch
  // row counts into the same counter, so the configured cadence holds
  // regardless of batch size; the clock is only read every `check_interval`
  // rows, so small values tighten latency and large values tighten overhead.
  uint32_t check_interval = 1024;

  // Rows per executor batch; 0 uses kDefaultBatchSize. Values are clamped to
  // [1, 65536]. Exposed mainly for tests that sweep batch-boundary edge
  // cases; the default is right for production use.
  uint32_t batch_size = 0;

  // Optional memory budget for this execution's transient state: hash-join
  // builds, EXISTS memos, semi-join key sets, merge-join outer batches,
  // emitted rows and dedup tables all charge against it (in coarse chunks,
  // so the per-row cost is an addition). When a reservation is refused the
  // execution unwinds with Status::ResourceExhausted exactly like a
  // cancellation. Nullable; must outlive the execution.
  MemoryBudget* budget = nullptr;

  // Morsel-driven intra-query parallelism. When `runner` is set and
  // `parallelism` resolves to >= 2, the executor partitions the largest
  // access path of each plan into Dewey-range morsels and fans them out on
  // the runner (caller-runs fallback: a refusing/saturated runner degrades
  // to serial on this thread, never an error). Results are merged back in
  // Dewey order, so output is identical to the serial path. Nullable.
  TaskRunner* runner = nullptr;
  // 0 = auto (runner->width()); 1 = serial; N = at most N threads per query.
  int parallelism = 0;

  // Internal (set by the morsel coordinator on per-morsel control copies):
  // sibling-failure broadcast. When a sibling morsel fails, every other
  // morsel of the group sees this flag and unwinds like a cancellation; the
  // coordinator keeps the first real error and drops the sibling aborts.
  const std::atomic<bool>* group_abort = nullptr;

  // Optional span-tree sink for this execution (see common/trace.h). The
  // context is shared by every morsel of the query — TraceContext is
  // thread-safe and spans open at morsel granularity, so contention is
  // negligible. Does NOT enable per-step actuals (that is the ExecTrace
  // parameter of ExecutePlannedQueryChunks); it only gives the executor a
  // place to hang coarse spans (per-morsel work, semi-join builds).
  // Nullable; must outlive the execution.
  TraceContext* trace = nullptr;

  // True when either trigger has already fired (one immediate sample).
  bool Expired() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    if (group_abort != nullptr &&
        group_abort->load(std::memory_order_relaxed)) {
      return true;
    }
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }
};

// Threads this control may fan one query out to: 1 without a runner,
// otherwise `parallelism` (0 = the runner's width), never below 1.
int EffectiveParallelism(const ExecControl* control);

struct QueryStats {
  size_t rows_scanned = 0;      // rows enumerated by access paths
  size_t index_probes = 0;      // point/range/prefix B-tree operations
  size_t subquery_evals = 0;    // EXISTS evaluations (cached or not)
  size_t exists_cache_hits = 0;    // EXISTS answered without running the
                                   // subplan (memo hit or semi-join lookup)
  size_t exists_cache_misses = 0;  // EXISTS that ran the subplan (or built
                                   // the semi-join set)
  size_t hash_tables_built = 0;    // kHashProbe build passes
  size_t hash_join_probes = 0;     // kHashProbe lookups (not index_probes:
                                   // they never touch a B-tree)
  size_t merge_join_rounds = 0;    // kMergeJoin batched passes executed
  size_t bitmap_prefilter_tests = 0;  // row ids tested against plan bitmaps
  size_t bitmap_prefilter_hits = 0;   // ...of which passed
  size_t exists_semijoin_builds = 0;  // decorrelated EXISTS set builds
  // High-water mark of ExecControl::budget during this query (bytes); 0
  // when the execution ran unbudgeted. Merged by max, not sum: nested and
  // UNION-block runs share one budget.
  size_t bytes_reserved_peak = 0;
  size_t output_rows = 0;
  // Batches handed to the result sink (top-level plans only; EXISTS
  // subplans feed their first-witness sink, not the result).
  size_t batches_emitted = 0;
  // Morsel parallelism: Dewey-range morsels dispatched (0 when the query
  // ran serial), how many of them were executed by pool threads rather than
  // the coordinating thread, and the peak distinct-thread fan-out of any
  // one parallel plan (merged by max, like bytes_reserved_peak).
  size_t morsels_scheduled = 0;
  size_t morsel_steals = 0;
  size_t parallel_threads = 0;
  // Effective rows-per-batch this execution ran with (kDefaultBatchSize
  // unless ExecControl overrode it); 0 if nothing executed.
  uint32_t batch_size = 0;

  // Folds another execution's stats into this one. This is THE merge used
  // everywhere stats cross an execution boundary — morsel → query, UNION
  // block → query, semi-join build → owner — so the semantics live in one
  // place: every counter sums, while `bytes_reserved_peak` (nested runs
  // share one budget; summing would double-count the same bytes),
  // `parallel_threads` (peak fan-out, not a total) and `batch_size` (a
  // configuration echo) merge by max. `output_rows` also sums — callers
  // that already accumulated their own output count (the chunked executor
  // overwrites it after the merge) must not rely on it mid-merge.
  void MergeFrom(const QueryStats& other);
};

// Per-plan-step actuals, collected only when the caller attaches an
// ExecTrace to the execution (a null trace costs nothing on the hot path —
// not even clock reads). One StepStats per AccessStep, in step order.
// Wall time is attributed at batch granularity by a phase-switching clock:
// the driver stamps TraceClock::NowUs() when execution moves between steps
// (feed/flush/merge-sweep boundaries), so each step's `time_us` is the wall
// time spent enumerating, filtering and emitting for that step — including
// EXISTS subplan evaluation and semi-join builds, which attribute to the
// step that owns the filter (their plans carry no StepStats of their own).
struct StepStats {
  uint64_t rows_in = 0;    // tuples entering the step's filter pipeline
  uint64_t rows_out = 0;   // tuples surviving all the step's filters
  uint64_t batches = 0;    // batches flushed through the step
  uint64_t index_probes = 0;    // B-tree point/range/prefix probes
  uint64_t hash_probes = 0;     // hash-join lookups
  uint64_t merge_rounds = 0;    // merge-join batched sweeps
  uint64_t bitmap_tests = 0;    // row ids tested against plan bitmaps
  uint64_t bitmap_hits = 0;     // ...of which passed
  uint64_t exists_evals = 0;    // EXISTS filter evaluations at this step
  uint64_t time_us = 0;         // phase-attributed wall time (0 if clock off)

  // Per-morsel skew, populated on parallel runs: how many morsels touched
  // this step and the min/max rows_out any single morsel produced (mean =
  // rows_out / morsels). 0 morsels = serial execution, no skew data.
  uint64_t morsels = 0;
  uint64_t min_rows = 0;
  uint64_t max_rows = 0;

  // Marks this StepStats as the yield of one finished morsel so MergeFrom
  // can fold it into a query-level aggregate with skew tracking.
  void SealMorsel() {
    morsels = 1;
    min_rows = max_rows = rows_out;
  }

  // Counters and time sum; morsel skew merges min/min, max/max. Merging is
  // done in Dewey-concatenation (morsel) order by the coordinator, so the
  // aggregate is deterministic and identical to a serial run's totals.
  void MergeFrom(const StepStats& other);
};

// Per-step actuals for a whole planned query: one StepStats vector per
// UNION block, parallel to the `plans` argument of
// ExecutePlannedQueryChunks. Pass one to opt into per-step collection;
// contents are cleared and refilled by the execution.
struct ExecTrace {
  std::vector<std::vector<StepStats>> blocks;
};

struct QueryResult {
  std::vector<std::string> column_labels;
  std::vector<Row> rows;
};

// Executes a compiled plan. The result honours DISTINCT and ORDER BY.
// `need_ordered_rows = false` skips the final ORDER BY sort (DISTINCT still
// applies) for callers that impose their own order on the result anyway —
// the XPath engine re-sorts node ids into document order, so row order out
// of the executor is wasted work on its path.
// `control` (nullable) arms cooperative cancellation and deadline checks;
// see ExecControl. Plans are immutable during execution — all per-execution
// state (hash-join tables, EXISTS memos, semi-join key sets, key buffers)
// lives in an execution context created per call — so any number of threads
// may execute the same Plan concurrently.
Result<QueryResult> ExecutePlan(const Plan& plan, QueryStats* stats,
                                bool need_ordered_rows = true,
                                const ExecControl* control = nullptr);

// Executes an already-planned UNION of selects (set semantics; the first
// block's ORDER BY orders the combined result). This is the reusable-plan
// entry point: callers that run the same query repeatedly plan once and
// call this per execution. Safe to call concurrently on shared plans.
Result<QueryResult> ExecutePlannedQuery(const std::vector<const Plan*>& plans,
                                        QueryStats* stats = nullptr,
                                        bool need_ordered_rows = true,
                                        const ExecControl* control = nullptr);

// A batch of result rows handed to a ChunkSink: `columns[c][r]` for
// c < column_count, r < rows. The vectors are owned by the executor and
// reused across batches — a sink must copy out what it keeps.
struct RowChunk {
  const std::vector<Value>* columns = nullptr;
  size_t column_count = 0;
  size_t rows = 0;
};

// Returns false to stop the execution early (surfaces as an OK, truncated
// consumption — the executor stops feeding, not an error).
using ChunkSink = std::function<bool(const RowChunk&)>;

// Streaming execution of a planned UNION: every block's result rows are fed
// to `sink` in batches, without materializing Rows, without ORDER BY, and
// without DISTINCT/UNION dedup — for callers that post-process the result
// set anyway (the XPath engine sorts + dedups node ids, so executor-side
// dedup of id rows is wasted work on its path). Same concurrency contract
// as ExecutePlannedQuery.
// `trace` (nullable) opts into per-step actuals: it is cleared and refilled
// with one StepStats vector per plan block (see ExecTrace). Tracing changes
// no results and adds at most a few clock reads per batch.
Status ExecutePlannedQueryChunks(const std::vector<const Plan*>& plans,
                                 const ChunkSink& sink,
                                 QueryStats* stats = nullptr,
                                 const ExecControl* control = nullptr,
                                 ExecTrace* trace = nullptr);

// Convenience: plan + execute a full query (UNION of selects). UNION applies
// set semantics; ORDER BY of the first block orders the combined result (the
// translators emit the same ORDER BY on every block).
Result<QueryResult> ExecuteQuery(const Database& db, const SqlQuery& query,
                                 QueryStats* stats = nullptr);
Result<QueryResult> ExecuteSelect(const Database& db, const SelectStmt& stmt,
                                  QueryStats* stats = nullptr);

}  // namespace xprel::rel

#endif  // XPREL_REL_QUERY_H_
