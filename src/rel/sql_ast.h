#ifndef XPREL_REL_SQL_AST_H_
#define XPREL_REL_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "rel/value.h"

namespace xprel::rel {

struct SelectStmt;
struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

// A SQL scalar / boolean expression. This is the language the XPath
// translators emit and the planner consumes; SqlToString() renders it in the
// Oracle-flavoured dialect the paper prints (REGEXP_LIKE, ||, BETWEEN).
struct SqlExpr {
  enum class Kind {
    kColumn,      // alias.column
    kLiteral,     // constant
    kBinary,      // args[0] op args[1]
    kNot,         // NOT args[0]
    kBetween,     // args[0] BETWEEN args[1] AND args[2]
    kConcat,      // args[0] || args[1]
    kExists,      // EXISTS (subquery)
    kRegexpLike,  // REGEXP_LIKE(args[0], args[1]); args[1] a string literal
    kLike,        // args[0] LIKE args[1]
    kIsNull,      // args[0] IS NULL
    kLength,      // LENGTH(args[0]) — byte length of a string/raw value
    kAdd,         // args[0] + args[1] (numeric)
  };
  enum class BinOp { kAnd, kOr, kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kLiteral;
  BinOp op = BinOp::kEq;

  std::string table_alias;  // kColumn
  std::string column;       // kColumn
  Value literal;            // kLiteral
  std::vector<SqlExprPtr> args;
  std::unique_ptr<SelectStmt> subquery;  // kExists

  SqlExpr() = default;
  SqlExpr(const SqlExpr&) = delete;
  SqlExpr& operator=(const SqlExpr&) = delete;
  SqlExpr(SqlExpr&&) = default;
  SqlExpr& operator=(SqlExpr&&) = default;
};

// Constructors, free-function style so translator code reads like SQL.
SqlExprPtr Col(std::string alias, std::string column);
SqlExprPtr Lit(Value v);
SqlExprPtr LitStr(std::string s);
SqlExprPtr LitInt(int64_t v);
SqlExprPtr LitBytes(std::string bytes);
SqlExprPtr Bin(SqlExpr::BinOp op, SqlExprPtr a, SqlExprPtr b);
SqlExprPtr And(SqlExprPtr a, SqlExprPtr b);   // either side may be null
SqlExprPtr Or(SqlExprPtr a, SqlExprPtr b);
SqlExprPtr Not(SqlExprPtr a);
SqlExprPtr Eq(SqlExprPtr a, SqlExprPtr b);
SqlExprPtr Between(SqlExprPtr v, SqlExprPtr lo, SqlExprPtr hi);
SqlExprPtr Concat(SqlExprPtr a, SqlExprPtr b);
SqlExprPtr Exists(std::unique_ptr<SelectStmt> subquery);
SqlExprPtr RegexpLike(SqlExprPtr text, std::string pattern);
SqlExprPtr Length(SqlExprPtr a);
SqlExprPtr Add(SqlExprPtr a, SqlExprPtr b);
SqlExprPtr CloneSqlExpr(const SqlExpr& e);

struct TableRef {
  std::string table;  // physical table name
  std::string alias;  // correlation name used in expressions
};

struct SelectItem {
  SqlExprPtr expr;
  std::string label;  // output column label
};

struct OrderByItem {
  SqlExprPtr expr;
  bool ascending = true;
};

// One SELECT block. `where` may be null (no restriction).
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> select;
  std::vector<TableRef> from;
  SqlExprPtr where;
  std::vector<OrderByItem> order_by;

  SelectStmt() = default;
  SelectStmt(const SelectStmt&) = delete;
  SelectStmt& operator=(const SelectStmt&) = delete;
  SelectStmt(SelectStmt&&) = default;
  SelectStmt& operator=(SelectStmt&&) = default;
};

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s);

// A full query: one or more SELECT blocks combined with UNION (set
// semantics). The paper's "SQL splitting" (Section 4.4) produces more than
// one block.
struct SqlQuery {
  std::vector<std::unique_ptr<SelectStmt>> selects;
};

// Renders to SQL text, formatted close to the paper's Tables 3-6.
std::string SqlToString(const SqlQuery& q);
std::string SqlToString(const SelectStmt& s);
std::string SqlToString(const SqlExpr& e);

}  // namespace xprel::rel

#endif  // XPREL_REL_SQL_AST_H_
