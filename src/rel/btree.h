#ifndef XPREL_REL_BTREE_H_
#define XPREL_REL_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xprel::rel {

using RowId = uint32_t;

// An in-memory B+-tree multimap from encoded byte-string keys (see
// key_codec.h) to row ids — the engine's analogue of the standard B-tree
// indexes the paper creates on `id`, each parent foreign key, and the
// composite (dewey_pos, path_id) (Section 3.1).
//
// Duplicate keys are allowed. Entries with equal keys are returned in
// insertion order. The tree supports insertion, deletion, and range scans.
class BTree {
 public:
  static constexpr size_t kLeafCapacity = 64;
  static constexpr size_t kInternalCapacity = 64;

  BTree();
  ~BTree();
  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  void Insert(std::string_view key, RowId row);

  // Removes the entry (key, row); returns false when no such entry exists.
  // Leaves are never merged or rebalanced — DML deletes are a tiny fraction
  // of bulk-loaded entries, and scans skip empty leaves through the links —
  // so deletion cannot invalidate live iterators' leaf pointers.
  bool Delete(std::string_view key, RowId row);

  size_t size() const { return size_; }
  int height() const { return height_; }

  // Forward iterator over (key, row) entries within a byte range. The
  // iterator refers to `upper`'s bytes rather than copying them (probes are
  // the executor's hottest loop), so the buffer passed to Scan() must stay
  // alive and unmodified while the iterator is in use.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    std::string_view key() const;
    RowId row() const;
    void Next();

   private:
    friend class BTree;
    const void* leaf_ = nullptr;  // LeafNode*
    size_t index_ = 0;
    std::string_view end_;  // exclusive upper bound (unowned, see above)
    bool unbounded_ = false;
    void CheckEnd();
  };

  // Entries with key in [lower, upper). Pass `unbounded_upper` to scan to
  // the end. `upper` must outlive the returned iterator.
  Iterator Scan(std::string_view lower, std::string_view upper) const;
  Iterator ScanFrom(std::string_view lower) const;
  Iterator ScanAll() const;

  // All rows whose key equals `key` exactly.
  std::vector<RowId> Lookup(std::string_view key) const;

  // Verifies structural invariants (key ordering, fill, linkage); used by
  // tests. Returns false if any invariant is broken.
  bool CheckInvariants() const;

 private:
  struct LeafNode;
  struct InternalNode;
  struct Node;

  LeafNode* FindLeaf(std::string_view key) const;
  // Splits `node` (full) and returns the separator key + new right sibling.
  void InsertIntoLeaf(LeafNode* leaf, std::string_view key, RowId row,
                      std::string* split_key, Node** split_node);
  void InsertIntoInternal(InternalNode* node, std::string_view key, RowId row,
                          std::string* split_key, Node** split_node);

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace xprel::rel

#endif  // XPREL_REL_BTREE_H_
