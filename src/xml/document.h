#ifndef XPREL_XML_DOCUMENT_H_
#define XPREL_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace xprel::xml {

// Node ids are preorder positions, starting at 1 for the document's root
// element — the same numbering the paper uses in Figure 1(b). Id 0 means
// "no node".
using NodeId = int32_t;
inline constexpr NodeId kNoNode = 0;

enum class NodeKind : uint8_t {
  kElement,
  kText,
};

struct Attribute {
  std::string name;
  std::string value;
};

// One node of the XML tree. Element nodes have a tag name and attributes;
// text nodes carry their character data in `text`.
struct Node {
  NodeKind kind = NodeKind::kElement;
  std::string name;             // element tag; empty for text nodes
  std::string text;             // character data; empty for elements
  std::vector<Attribute> attributes;

  NodeId parent = kNoNode;
  std::vector<NodeId> children;  // in document order
  int32_t depth = 0;             // root element = 1
  // Position among the parent's children, 1-based (the "local order" that
  // Dewey components encode).
  int32_t sibling_ordinal = 1;
};

// A parsed XML document: an ordered, labeled tree stored as a preorder array
// of nodes, so that node ids coincide with document order. The tree shape is
// immutable after construction; use XmlBuilder or ParseXml to create one.
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  NodeId root() const { return nodes_.empty() ? kNoNode : 1; }
  // Total number of nodes (elements + text nodes).
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id - 1)]; }
  bool IsElement(NodeId id) const { return node(id).kind == NodeKind::kElement; }

  // Attribute value of an element, or nullptr if absent.
  const std::string* FindAttribute(NodeId id, std::string_view name) const;

  // Concatenation of all descendant text of `id` in document order — the
  // XPath string-value of an element.
  std::string StringValue(NodeId id) const;

  // Root-to-node path of an *element* node, e.g. "/dblp/inproceedings/title".
  // Attribute of the paper's Section 3.1 path index. InvalidArgument when
  // `id` is out of range or names a text node — malformed ids must not be
  // able to crash a release build.
  Result<std::string> RootToNodePath(NodeId id) const;

  // Number of element nodes (text nodes excluded).
  int32_t CountElements() const;

 private:
  friend class Builder;
  std::vector<Node> nodes_;
};

// Incremental preorder construction of a Document. Used both by the XML
// parser and by the synthetic data generators.
//
//   Builder b;
//   b.StartElement("site");
//   b.AddAttribute("id", "s0");
//   b.AddText("hello");
//   b.EndElement();
//   Document doc = std::move(b).Finish().value();
//
// Misuse (adding content or closing an element at top level, finishing
// with unclosed elements) is latched as a ParseError and surfaces from
// Finish() — callers that feed the builder from untrusted input get a
// Status, never an abort.
class Builder {
 public:
  Builder() = default;

  NodeId StartElement(std::string_view name);
  void AddAttribute(std::string_view name, std::string_view value);
  NodeId AddText(std::string_view text);
  void EndElement();

  // Convenience: element with a single text child.
  NodeId AddTextElement(std::string_view name, std::string_view text);

  bool AtTopLevel() const { return stack_.empty(); }

  // First structural error so far (sticky), or OK.
  const Status& error() const { return error_; }

  Result<Document> Finish() &&;

 private:
  void Fail(const char* what);

  Document doc_;
  std::vector<NodeId> stack_;
  Status error_;
};

}  // namespace xprel::xml

#endif  // XPREL_XML_DOCUMENT_H_
