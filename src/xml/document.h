#ifndef XPREL_XML_DOCUMENT_H_
#define XPREL_XML_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace xprel::xml {

// Node ids are preorder positions, starting at 1 for the document's root
// element — the same numbering the paper uses in Figure 1(b). Id 0 means
// "no node".
using NodeId = int32_t;
inline constexpr NodeId kNoNode = 0;

enum class NodeKind : uint8_t {
  kElement,
  kText,
};

struct Attribute {
  std::string name;
  std::string value;
};

// One node of the XML tree. Element nodes have a tag name and attributes;
// text nodes carry their character data in `text`.
struct Node {
  NodeKind kind = NodeKind::kElement;
  std::string name;             // element tag; empty for text nodes
  std::string text;             // character data; empty for elements
  std::vector<Attribute> attributes;

  NodeId parent = kNoNode;
  std::vector<NodeId> children;  // in document order
  int32_t depth = 0;             // root element = 1
  // Position among the parent's children at build time, 1-based. Not
  // maintained under DML (nothing reads it after construction); the dewey
  // key below is the document-order authority.
  int32_t sibling_ordinal = 1;
  // Binary Dewey order key (encoding::Dewey), elements only. Assigned with
  // gap-strided ordinals by Builder::Finish and maintained by the DML
  // layer; the shred loaders read it instead of recomputing, so document
  // and stores always agree on order keys.
  std::string dewey;
  // False once the node's subtree was removed by DML. Dead nodes keep
  // their slot (ids are stable) but are unlinked from the tree.
  bool alive = true;
};

// A parsed XML document: an ordered, labeled tree stored as an array of
// nodes. At construction node ids coincide with document order (preorder);
// DML (src/dml) may later graft subtrees at the end of the array and
// tombstone removed ones — ids stay stable, and OrderRank() gives the
// current document-order position. Use Builder or ParseXml to create one.
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  NodeId root() const { return nodes_.empty() ? kNoNode : 1; }
  // Total number of nodes (elements + text nodes).
  int32_t size() const { return static_cast<int32_t>(nodes_.size()); }

  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id - 1)]; }
  bool IsElement(NodeId id) const { return node(id).kind == NodeKind::kElement; }

  // Attribute value of an element, or nullptr if absent.
  const std::string* FindAttribute(NodeId id, std::string_view name) const;

  // Concatenation of all descendant text of `id` in document order — the
  // XPath string-value of an element.
  std::string StringValue(NodeId id) const;

  // Root-to-node path of an *element* node, e.g. "/dblp/inproceedings/title".
  // Attribute of the paper's Section 3.1 path index. InvalidArgument when
  // `id` is out of range or names a text node — malformed ids must not be
  // able to crash a release build.
  Result<std::string> RootToNodePath(NodeId id) const;

  // Number of live element nodes (text and removed nodes excluded).
  int32_t CountElements() const;

  // --- DML support (used by dml::DocumentMutator) ---

  // Binary Dewey order key of an element (empty for text nodes).
  const std::string& dewey(NodeId id) const { return node(id).dewey; }
  bool alive(NodeId id) const { return node(id).alive; }

  // Document-order position of `id` among live nodes: equals the id for a
  // freshly built document, and is refreshed by RefreshOrderRanks() after
  // mutations (grafted nodes live at the end of the array regardless of
  // their tree position, so ids alone no longer sort correctly).
  int32_t OrderRank(NodeId id) const {
    return ranks_.empty() ? id : ranks_[static_cast<size_t>(id - 1)];
  }

  // Direct node access for the DML layer (text updates, dewey rewrites).
  Node& MutableNode(NodeId id) { return nodes_[static_cast<size_t>(id - 1)]; }

  // Copies the subtree rooted at `src_root` of `src` into this document as
  // fresh ids appended at the array end, linked under `parent` at position
  // `child_index` of its child list. The new root takes `root_dewey`;
  // descendants get gap-strided child keys below it. Returns the new root's
  // id.
  NodeId AdoptSubtree(const Document& src, NodeId src_root, NodeId parent,
                      size_t child_index, std::string root_dewey);

  // Unlinks `id` from its parent and marks the whole subtree dead.
  void RemoveSubtree(NodeId id);

  // Replaces the direct text of element `id`: the first text child takes
  // `text` (one is appended if none exists and `text` is non-empty),
  // surplus text children are removed. Element children are untouched.
  void SetDirectText(NodeId id, std::string_view text);

  // Rolls back AdoptSubtree: drops every node with id > old_size and any
  // child links pointing at them.
  void TruncateTo(int32_t old_size);

  // Recomputes OrderRank() by a preorder walk over the live tree.
  void RefreshOrderRanks();

  // --- Snapshot support (used by the durability layer) ---

  // The raw node array verbatim, dead nodes included. Ids are positions
  // (id = index + 1), so a durability snapshot that carries this array
  // preserves the exact id assignment — the property that lets WAL records,
  // which name nodes by id, replay against a restored document.
  const std::vector<Node>& raw_nodes() const { return nodes_; }

  // Rebuilds a document from a raw node array (the inverse of
  // raw_nodes()). Validates the structure — parent/child ids in range,
  // child links consistent with parent pointers, the live tree acyclic —
  // and returns InvalidArgument on any violation, so a corrupt snapshot
  // can never install a tree that later walks out of bounds or loops.
  static Result<Document> FromRawNodes(std::vector<Node> nodes);

 private:
  friend class Builder;
  std::vector<Node> nodes_;
  std::vector<int32_t> ranks_;  // empty until the first RefreshOrderRanks
};

// Incremental preorder construction of a Document. Used both by the XML
// parser and by the synthetic data generators.
//
//   Builder b;
//   b.StartElement("site");
//   b.AddAttribute("id", "s0");
//   b.AddText("hello");
//   b.EndElement();
//   Document doc = std::move(b).Finish().value();
//
// Misuse (adding content or closing an element at top level, finishing
// with unclosed elements) is latched as a ParseError and surfaces from
// Finish() — callers that feed the builder from untrusted input get a
// Status, never an abort.
class Builder {
 public:
  Builder() = default;

  NodeId StartElement(std::string_view name);
  void AddAttribute(std::string_view name, std::string_view value);
  NodeId AddText(std::string_view text);
  void EndElement();

  // Convenience: element with a single text child.
  NodeId AddTextElement(std::string_view name, std::string_view text);

  bool AtTopLevel() const { return stack_.empty(); }

  // First structural error so far (sticky), or OK.
  const Status& error() const { return error_; }

  Result<Document> Finish() &&;

 private:
  void Fail(const char* what);

  Document doc_;
  std::vector<NodeId> stack_;
  Status error_;
};

}  // namespace xprel::xml

#endif  // XPREL_XML_DOCUMENT_H_
