#ifndef XPREL_XML_PARSER_H_
#define XPREL_XML_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xml/document.h"

namespace xprel::xml {

struct ParseOptions {
  // When false (the default for shredding), text nodes consisting solely of
  // whitespace between elements are dropped; they carry no data and would
  // bloat the relational image.
  bool keep_whitespace_text = false;
  // Maximum element nesting depth before the parser rejects the document
  // with ResourceExhausted. The parser recurses per element, so an
  // adversarial <a><a><a>... document could otherwise exhaust the stack;
  // real corpora nest a few dozen levels deep. 0 disables the limit.
  int max_depth = 256;
};

// Parses a standalone XML document: one root element, optional XML
// declaration, comments, processing instructions, CDATA sections, the five
// predefined entities plus decimal/hex character references. DTDs in the
// prolog are skipped, not validated — schema validation is the XSD module's
// job.
Result<Document> ParseXml(std::string_view input,
                          const ParseOptions& options = {});

}  // namespace xprel::xml

#endif  // XPREL_XML_PARSER_H_
