#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace xprel::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

class XmlParser {
 public:
  XmlParser(std::string_view input, const ParseOptions& options)
      : s_(input), options_(options) {}

  Result<Document> Parse() {
    SkipProlog();
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    XPREL_RETURN_IF_ERROR(ParseElement());
    SkipMisc();
    if (!AtEnd()) return Error("content after root element");
    if (!builder_.AtTopLevel()) return Error("unclosed element");
    return std::move(builder_).Finish();
  }

 private:
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < s_.size() ? s_[pos_ + off] : '\0';
  }
  void Advance(size_t n = 1) { pos_ += n; }

  bool ConsumePrefix(std::string_view p) {
    if (s_.substr(pos_, p.size()) == p) {
      pos_ += p.size();
      return true;
    }
    return false;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(std::string msg) const {
    return Status::ParseError("xml: " + msg + " at offset " +
                              std::to_string(pos_));
  }

  // Skips the document prolog: XML declaration, comments, PIs, DOCTYPE.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (ConsumePrefix("<?")) {
        SkipUntil("?>");
      } else if (ConsumePrefix("<!--")) {
        SkipUntil("-->");
      } else if (s_.substr(pos_, 9) == "<!DOCTYPE") {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  // Skips comments / PIs / whitespace after the root element.
  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (ConsumePrefix("<!--")) {
        SkipUntil("-->");
      } else if (ConsumePrefix("<?")) {
        SkipUntil("?>");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view terminator) {
    size_t p = s_.find(terminator, pos_);
    pos_ = (p == std::string_view::npos) ? s_.size() : p + terminator.size();
  }

  void SkipDoctype() {
    // "<!DOCTYPE ... >" possibly with an [ internal subset ].
    Advance(9);
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      Advance();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth <= 0) {
        return;
      }
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Status(StatusCode::kParseError,
                    "xml: expected name at offset " + std::to_string(pos_));
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(s_.substr(start, pos_ - start));
  }

  // Decodes entity and character references in `raw`.
  Result<std::string> DecodeText(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      char c = raw[i];
      if (c != '&') {
        out.push_back(c);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("xml: unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out.push_back('<');
      } else if (ent == "gt") {
        out.push_back('>');
      } else if (ent == "amp") {
        out.push_back('&');
      } else if (ent == "apos") {
        out.push_back('\'');
      } else if (ent == "quot") {
        out.push_back('"');
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        // Encode as UTF-8.
        if (code <= 0) {
          return Status::ParseError("xml: bad character reference");
        } else if (code < 0x80) {
          out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out.push_back(static_cast<char>(0xC0 | (code >> 6)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else if (code < 0x10000) {
          out.push_back(static_cast<char>(0xE0 | (code >> 12)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out.push_back(static_cast<char>(0xF0 | (code >> 18)));
          out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Status::ParseError("xml: unknown entity '&" + std::string(ent) +
                                  ";'");
      }
      i = semi;
    }
    return out;
  }

  Status ParseAttributes() {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      char c = Peek();
      if (c == '>' || c == '/') return Status::Ok();
      auto name = ParseName();
      if (!name.ok()) return name.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Error("expected quoted attribute value");
      }
      char quote = Peek();
      Advance();
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) Advance();
      if (AtEnd()) return Error("unterminated attribute value");
      auto value = DecodeText(s_.substr(start, pos_ - start));
      if (!value.ok()) return value.status();
      Advance();  // closing quote
      builder_.AddAttribute(name.value(), value.value());
    }
  }

  Status ParseElement() {
    // Caller guarantees Peek() == '<'.
    if (options_.max_depth > 0 && depth_ >= options_.max_depth) {
      return Status::ResourceExhausted(
          "xml: element nesting exceeds max_depth=" +
          std::to_string(options_.max_depth) + " at offset " +
          std::to_string(pos_));
    }
    ++depth_;
    Advance();
    auto name = ParseName();
    if (!name.ok()) return name.status();
    builder_.StartElement(name.value());
    XPREL_RETURN_IF_ERROR(ParseAttributes());
    if (ConsumePrefix("/>")) {
      builder_.EndElement();
      --depth_;
      return Status::Ok();
    }
    if (!ConsumePrefix(">")) return Error("expected '>'");
    XPREL_RETURN_IF_ERROR(ParseContent(name.value()));
    --depth_;
    return Status::Ok();
  }

  // Parses element content up to and including the matching end tag.
  Status ParseContent(const std::string& open_name) {
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      if (pending_text.empty()) return Status::Ok();
      if (options_.keep_whitespace_text || !IsAllWhitespace(pending_text)) {
        auto decoded = DecodeText(pending_text);
        if (!decoded.ok()) return decoded.status();
        builder_.AddText(decoded.value());
      }
      pending_text.clear();
      return Status::Ok();
    };

    while (true) {
      if (AtEnd()) return Error("unterminated element <" + open_name + ">");
      char c = Peek();
      if (c != '<') {
        pending_text.push_back(c);
        Advance();
        continue;
      }
      if (ConsumePrefix("</")) {
        XPREL_RETURN_IF_ERROR(flush_text());
        auto close = ParseName();
        if (!close.ok()) return close.status();
        SkipWhitespace();
        if (!ConsumePrefix(">")) return Error("expected '>' in end tag");
        if (close.value() != open_name) {
          return Error("mismatched end tag </" + close.value() +
                       "> for <" + open_name + ">");
        }
        builder_.EndElement();
        return Status::Ok();
      }
      if (ConsumePrefix("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (ConsumePrefix("<![CDATA[")) {
        size_t end = s_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated CDATA section");
        }
        // CDATA content is literal: bypass entity decoding by flushing what
        // we have, then emitting the raw bytes as their own text node.
        XPREL_RETURN_IF_ERROR(flush_text());
        builder_.AddText(s_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (ConsumePrefix("<?")) {
        SkipUntil("?>");
        continue;
      }
      // Child element.
      XPREL_RETURN_IF_ERROR(flush_text());
      XPREL_RETURN_IF_ERROR(ParseElement());
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
  int depth_ = 0;
  ParseOptions options_;
  Builder builder_;
};

}  // namespace

Result<Document> ParseXml(std::string_view input, const ParseOptions& options) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("xml.parse"));
  XmlParser parser(input, options);
  return parser.Parse();
}

}  // namespace xprel::xml
