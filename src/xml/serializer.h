#ifndef XPREL_XML_SERIALIZER_H_
#define XPREL_XML_SERIALIZER_H_

#include <string>

#include "xml/document.h"

namespace xprel::xml {

struct SerializeOptions {
  // Pretty-print with two-space indentation and newlines. Off by default so
  // that serialize(parse(x)) preserves text content exactly.
  bool indent = false;
};

// Serializes the document back to XML text, escaping the five predefined
// entities in text and attribute values.
std::string SerializeXml(const Document& doc, const SerializeOptions& options = {});

// Escapes &, <, >, ", ' in `s` for inclusion in XML text or attributes.
std::string EscapeXml(const std::string& s);

}  // namespace xprel::xml

#endif  // XPREL_XML_SERIALIZER_H_
