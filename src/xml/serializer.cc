#include "xml/serializer.h"

namespace xprel::xml {

std::string EscapeXml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void SerializeNode(const Document& doc, NodeId id,
                   const SerializeOptions& options, int depth,
                   std::string& out) {
  const Node& n = doc.node(id);
  auto indent = [&]() {
    if (options.indent) {
      out.push_back('\n');
      out.append(static_cast<size_t>(depth) * 2, ' ');
    }
  };
  if (n.kind == NodeKind::kText) {
    out += EscapeXml(n.text);
    return;
  }
  indent();
  out.push_back('<');
  out += n.name;
  for (const Attribute& a : n.attributes) {
    out.push_back(' ');
    out += a.name;
    out += "=\"";
    out += EscapeXml(a.value);
    out.push_back('"');
  }
  if (n.children.empty()) {
    out += "/>";
    return;
  }
  out.push_back('>');
  bool has_element_child = false;
  for (NodeId c : n.children) {
    if (doc.node(c).kind == NodeKind::kElement) has_element_child = true;
    SerializeNode(doc, c, options, depth + 1, out);
  }
  if (options.indent && has_element_child) {
    out.push_back('\n');
    out.append(static_cast<size_t>(depth) * 2, ' ');
  }
  out += "</";
  out += n.name;
  out.push_back('>');
}

}  // namespace

std::string SerializeXml(const Document& doc, const SerializeOptions& options) {
  std::string out;
  if (doc.root() != kNoNode) {
    SerializeNode(doc, doc.root(), options, 0, out);
  }
  if (options.indent && !out.empty() && out.front() == '\n') {
    out.erase(out.begin());
  }
  return out;
}

}  // namespace xprel::xml
