#include "xml/document.h"

namespace xprel::xml {

const std::string* Document::FindAttribute(NodeId id,
                                           std::string_view name) const {
  const Node& n = node(id);
  for (const Attribute& a : n.attributes) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

std::string Document::StringValue(NodeId id) const {
  const Node& n = node(id);
  if (n.kind == NodeKind::kText) return n.text;
  std::string out;
  // Descendants of a preorder node are the contiguous id range following it,
  // bounded by the first node that is not deeper than it.
  for (NodeId d = id + 1; d <= size(); ++d) {
    const Node& dn = node(d);
    if (dn.depth <= n.depth) break;
    if (dn.kind == NodeKind::kText) out += dn.text;
  }
  return out;
}

Result<std::string> Document::RootToNodePath(NodeId id) const {
  if (id < 1 || id > size()) {
    return Status::InvalidArgument("node id " + std::to_string(id) +
                                   " out of range");
  }
  if (!IsElement(id)) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is not an element");
  }
  std::vector<const std::string*> names;
  for (NodeId cur = id; cur != kNoNode; cur = node(cur).parent) {
    names.push_back(&node(cur).name);
  }
  std::string out;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    out += '/';
    out += **it;
  }
  return out;
}

int32_t Document::CountElements() const {
  int32_t n = 0;
  for (const Node& node : nodes_) {
    if (node.kind == NodeKind::kElement) ++n;
  }
  return n;
}

void Builder::Fail(const char* what) {
  if (error_.ok()) {
    error_ = Status::ParseError(std::string("xml builder: ") + what);
  }
}

NodeId Builder::StartElement(std::string_view name) {
  Node n;
  n.kind = NodeKind::kElement;
  n.name = std::string(name);
  n.parent = stack_.empty() ? kNoNode : stack_.back();
  n.depth = static_cast<int32_t>(stack_.size()) + 1;
  doc_.nodes_.push_back(std::move(n));
  NodeId id = static_cast<NodeId>(doc_.nodes_.size());
  if (!stack_.empty()) {
    Node& parent = doc_.nodes_[static_cast<size_t>(stack_.back() - 1)];
    parent.children.push_back(id);
    doc_.nodes_.back().sibling_ordinal =
        static_cast<int32_t>(parent.children.size());
  }
  stack_.push_back(id);
  return id;
}

void Builder::AddAttribute(std::string_view name, std::string_view value) {
  if (stack_.empty()) {
    Fail("AddAttribute with no open element");
    return;
  }
  Node& n = doc_.nodes_[static_cast<size_t>(stack_.back() - 1)];
  // Attributes may only be added before any child is appended, mirroring the
  // XML syntax; the parser guarantees this.
  n.attributes.push_back({std::string(name), std::string(value)});
}

NodeId Builder::AddText(std::string_view text) {
  if (stack_.empty()) {
    Fail("AddText with no open element");
    return kNoNode;
  }
  Node n;
  n.kind = NodeKind::kText;
  n.text = std::string(text);
  n.parent = stack_.back();
  n.depth = static_cast<int32_t>(stack_.size()) + 1;
  doc_.nodes_.push_back(std::move(n));
  NodeId id = static_cast<NodeId>(doc_.nodes_.size());
  Node& parent = doc_.nodes_[static_cast<size_t>(stack_.back() - 1)];
  parent.children.push_back(id);
  doc_.nodes_.back().sibling_ordinal =
      static_cast<int32_t>(parent.children.size());
  return id;
}

NodeId Builder::AddTextElement(std::string_view name, std::string_view text) {
  NodeId id = StartElement(name);
  AddText(text);
  EndElement();
  return id;
}

void Builder::EndElement() {
  if (stack_.empty()) {
    Fail("EndElement with no open element");
    return;
  }
  stack_.pop_back();
}

Result<Document> Builder::Finish() && {
  if (!error_.ok()) return error_;
  if (!stack_.empty()) {
    return Status::ParseError("xml builder: Finish() with " +
                              std::to_string(stack_.size()) +
                              " unclosed element(s)");
  }
  return std::move(doc_);
}

}  // namespace xprel::xml
