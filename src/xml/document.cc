#include "xml/document.h"

#include <algorithm>
#include <cstddef>

#include "encoding/dewey.h"

namespace xprel::xml {

using encoding::Dewey;

const std::string* Document::FindAttribute(NodeId id,
                                           std::string_view name) const {
  const Node& n = node(id);
  for (const Attribute& a : n.attributes) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

namespace {

void AppendDescendantText(const Document& doc, NodeId id, std::string& out) {
  for (NodeId c : doc.node(id).children) {
    const Node& cn = doc.node(c);
    if (cn.kind == NodeKind::kText) {
      out += cn.text;
    } else {
      AppendDescendantText(doc, c, out);
    }
  }
}

}  // namespace

std::string Document::StringValue(NodeId id) const {
  const Node& n = node(id);
  if (n.kind == NodeKind::kText) return n.text;
  // Walk the child lists rather than the id range: after DML, descendants
  // are no longer a contiguous id run. Depth is parser-bounded, so the
  // recursion is shallow.
  std::string out;
  AppendDescendantText(*this, id, out);
  return out;
}

Result<std::string> Document::RootToNodePath(NodeId id) const {
  if (id < 1 || id > size()) {
    return Status::InvalidArgument("node id " + std::to_string(id) +
                                   " out of range");
  }
  if (!IsElement(id)) {
    return Status::InvalidArgument("node " + std::to_string(id) +
                                   " is not an element");
  }
  std::vector<const std::string*> names;
  for (NodeId cur = id; cur != kNoNode; cur = node(cur).parent) {
    names.push_back(&node(cur).name);
  }
  std::string out;
  for (auto it = names.rbegin(); it != names.rend(); ++it) {
    out += '/';
    out += **it;
  }
  return out;
}

int32_t Document::CountElements() const {
  int32_t n = 0;
  for (const Node& node : nodes_) {
    if (node.kind == NodeKind::kElement && node.alive) ++n;
  }
  return n;
}

NodeId Document::AdoptSubtree(const Document& src, NodeId src_root,
                              NodeId parent, size_t child_index,
                              std::string root_dewey) {
  auto copy = [&](auto&& self, NodeId sid, NodeId dst_parent,
                  std::string dewey) -> NodeId {
    const Node& sn = src.node(sid);
    Node n;
    n.kind = sn.kind;
    n.name = sn.name;
    n.text = sn.text;
    n.attributes = sn.attributes;
    n.parent = dst_parent;
    n.depth = dst_parent == kNoNode
                  ? 1
                  : nodes_[static_cast<size_t>(dst_parent - 1)].depth + 1;
    n.dewey = std::move(dewey);
    nodes_.push_back(std::move(n));
    const NodeId id = static_cast<NodeId>(nodes_.size());
    uint32_t elem_idx = 0;
    for (NodeId c : sn.children) {
      std::string child_dewey;
      if (src.node(c).kind == NodeKind::kElement) {
        // Re-index nodes_ on every access: push_back below reallocates.
        child_dewey = Dewey::StridedChild(
            nodes_[static_cast<size_t>(id - 1)].dewey, elem_idx++);
      }
      NodeId cid = self(self, c, id, std::move(child_dewey));
      nodes_[static_cast<size_t>(id - 1)].children.push_back(cid);
      nodes_[static_cast<size_t>(cid - 1)].sibling_ordinal =
          static_cast<int32_t>(
              nodes_[static_cast<size_t>(id - 1)].children.size());
    }
    return id;
  };
  NodeId new_root = copy(copy, src_root, parent, std::move(root_dewey));
  std::vector<NodeId>& siblings =
      nodes_[static_cast<size_t>(parent - 1)].children;
  child_index = std::min(child_index, siblings.size());
  siblings.insert(siblings.begin() + static_cast<ptrdiff_t>(child_index),
                  new_root);
  return new_root;
}

void Document::RemoveSubtree(NodeId id) {
  Node& n = nodes_[static_cast<size_t>(id - 1)];
  if (n.parent != kNoNode) {
    std::vector<NodeId>& siblings =
        nodes_[static_cast<size_t>(n.parent - 1)].children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), id),
                   siblings.end());
  }
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    Node& c = nodes_[static_cast<size_t>(cur - 1)];
    c.alive = false;
    for (NodeId k : c.children) stack.push_back(k);
  }
}

void Document::SetDirectText(NodeId id, std::string_view text) {
  Node& n = nodes_[static_cast<size_t>(id - 1)];
  NodeId first_text = kNoNode;
  std::vector<NodeId> surplus;
  for (NodeId c : n.children) {
    if (nodes_[static_cast<size_t>(c - 1)].kind != NodeKind::kText) continue;
    if (first_text == kNoNode) {
      first_text = c;
    } else {
      surplus.push_back(c);
    }
  }
  if (first_text != kNoNode && text.empty()) {
    surplus.push_back(first_text);
    first_text = kNoNode;
  }
  for (NodeId c : surplus) {
    nodes_[static_cast<size_t>(c - 1)].alive = false;
    std::vector<NodeId>& ch = n.children;
    ch.erase(std::remove(ch.begin(), ch.end(), c), ch.end());
  }
  if (first_text != kNoNode) {
    nodes_[static_cast<size_t>(first_text - 1)].text = std::string(text);
  } else if (!text.empty()) {
    Node t;
    t.kind = NodeKind::kText;
    t.text = std::string(text);
    t.parent = id;
    t.depth = n.depth + 1;
    nodes_.push_back(std::move(t));
    // Re-index: push_back may have moved the node array.
    nodes_[static_cast<size_t>(id - 1)].children.push_back(
        static_cast<NodeId>(nodes_.size()));
  }
}

void Document::TruncateTo(int32_t old_size) {
  for (size_t i = 0; i < static_cast<size_t>(old_size); ++i) {
    std::vector<NodeId>& ch = nodes_[i].children;
    ch.erase(std::remove_if(ch.begin(), ch.end(),
                            [&](NodeId c) { return c > old_size; }),
             ch.end());
  }
  nodes_.resize(static_cast<size_t>(old_size));
  if (!ranks_.empty()) ranks_.resize(static_cast<size_t>(old_size));
}

void Document::RefreshOrderRanks() {
  ranks_.assign(nodes_.size(), 0);
  if (root() == kNoNode) return;
  int32_t next = 0;
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    NodeId cur = stack.back();
    stack.pop_back();
    ranks_[static_cast<size_t>(cur - 1)] = ++next;
    const std::vector<NodeId>& ch =
        nodes_[static_cast<size_t>(cur - 1)].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
}

Result<Document> Document::FromRawNodes(std::vector<Node> nodes) {
  const NodeId size = static_cast<NodeId>(nodes.size());
  for (NodeId id = 1; id <= size; ++id) {
    const Node& n = nodes[static_cast<size_t>(id - 1)];
    if (n.kind != NodeKind::kElement && n.kind != NodeKind::kText) {
      return Status::InvalidArgument("document restore: node " +
                                     std::to_string(id) +
                                     " has an invalid kind");
    }
    if (n.parent < 0 || n.parent > size || n.parent == id) {
      return Status::InvalidArgument("document restore: node " +
                                     std::to_string(id) +
                                     " has an out-of-range parent");
    }
    for (NodeId c : n.children) {
      if (c < 1 || c > size) {
        return Status::InvalidArgument("document restore: node " +
                                       std::to_string(id) +
                                       " has an out-of-range child");
      }
      if (nodes[static_cast<size_t>(c - 1)].parent != id) {
        return Status::InvalidArgument(
            "document restore: child link of node " + std::to_string(id) +
            " disagrees with the child's parent pointer");
      }
    }
  }
  // The live tree reachable from the root must be acyclic: a child-link
  // cycle would hang every preorder walk (RefreshOrderRanks, serialization).
  if (size > 0) {
    std::vector<bool> seen(static_cast<size_t>(size), false);
    std::vector<NodeId> stack{1};
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      if (seen[static_cast<size_t>(cur - 1)]) {
        return Status::InvalidArgument(
            "document restore: child links form a cycle at node " +
            std::to_string(cur));
      }
      seen[static_cast<size_t>(cur - 1)] = true;
      for (NodeId c : nodes[static_cast<size_t>(cur - 1)].children) {
        stack.push_back(c);
      }
    }
  }
  Document doc;
  doc.nodes_ = std::move(nodes);
  doc.RefreshOrderRanks();
  return doc;
}

void Builder::Fail(const char* what) {
  if (error_.ok()) {
    error_ = Status::ParseError(std::string("xml builder: ") + what);
  }
}

NodeId Builder::StartElement(std::string_view name) {
  Node n;
  n.kind = NodeKind::kElement;
  n.name = std::string(name);
  n.parent = stack_.empty() ? kNoNode : stack_.back();
  n.depth = static_cast<int32_t>(stack_.size()) + 1;
  doc_.nodes_.push_back(std::move(n));
  NodeId id = static_cast<NodeId>(doc_.nodes_.size());
  if (!stack_.empty()) {
    Node& parent = doc_.nodes_[static_cast<size_t>(stack_.back() - 1)];
    parent.children.push_back(id);
    doc_.nodes_.back().sibling_ordinal =
        static_cast<int32_t>(parent.children.size());
  }
  stack_.push_back(id);
  return id;
}

void Builder::AddAttribute(std::string_view name, std::string_view value) {
  if (stack_.empty()) {
    Fail("AddAttribute with no open element");
    return;
  }
  Node& n = doc_.nodes_[static_cast<size_t>(stack_.back() - 1)];
  // Attributes may only be added before any child is appended, mirroring the
  // XML syntax; the parser guarantees this.
  n.attributes.push_back({std::string(name), std::string(value)});
}

NodeId Builder::AddText(std::string_view text) {
  if (stack_.empty()) {
    Fail("AddText with no open element");
    return kNoNode;
  }
  Node n;
  n.kind = NodeKind::kText;
  n.text = std::string(text);
  n.parent = stack_.back();
  n.depth = static_cast<int32_t>(stack_.size()) + 1;
  doc_.nodes_.push_back(std::move(n));
  NodeId id = static_cast<NodeId>(doc_.nodes_.size());
  Node& parent = doc_.nodes_[static_cast<size_t>(stack_.back() - 1)];
  parent.children.push_back(id);
  doc_.nodes_.back().sibling_ordinal =
      static_cast<int32_t>(parent.children.size());
  return id;
}

NodeId Builder::AddTextElement(std::string_view name, std::string_view text) {
  NodeId id = StartElement(name);
  AddText(text);
  EndElement();
  return id;
}

void Builder::EndElement() {
  if (stack_.empty()) {
    Fail("EndElement with no open element");
    return;
  }
  stack_.pop_back();
}

Result<Document> Builder::Finish() && {
  if (!error_.ok()) return error_;
  if (!stack_.empty()) {
    return Status::ParseError("xml builder: Finish() with " +
                              std::to_string(stack_.size()) +
                              " unclosed element(s)");
  }
  // Assign gap-strided Dewey keys in one preorder pass (parents precede
  // children in the build array, so a single forward sweep sees every
  // parent's key before its children need it). The root is "1", exactly as
  // in the paper; children take strided ordinals so DML can caret into the
  // gaps without renumbering.
  std::vector<uint32_t> elem_children(doc_.nodes_.size(), 0);
  for (size_t i = 0; i < doc_.nodes_.size(); ++i) {
    Node& n = doc_.nodes_[i];
    if (n.kind != NodeKind::kElement) continue;
    if (n.parent == kNoNode) {
      n.dewey = Dewey::FromComponents({1});
    } else {
      const size_t p = static_cast<size_t>(n.parent - 1);
      n.dewey = Dewey::StridedChild(doc_.nodes_[p].dewey, elem_children[p]++);
    }
  }
  return std::move(doc_);
}

}  // namespace xprel::xml
