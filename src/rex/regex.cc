#include "rex/regex.h"

#include <algorithm>
#include <cassert>

#include "common/fault_injection.h"

namespace xprel::rex {

namespace {

// ---------------------------------------------------------------------------
// Parsing: pattern text -> syntax tree.
// ---------------------------------------------------------------------------

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  enum class Kind {
    kCharSet,      // one byte from `bytes`
    kConcat,       // children in sequence
    kAlt,          // one of children
    kRepeat,       // child repeated [min, max] times; max < 0 = unbounded
    kAssertBegin,  // ^
    kAssertEnd,    // $
    kEmpty,        // matches the empty string
  };
  Kind kind;
  std::bitset<256> bytes;
  std::vector<NodePtr> children;
  int min = 0;
  int max = 0;
};

NodePtr MakeNode(Node::Kind kind) {
  auto n = std::make_unique<Node>();
  n->kind = kind;
  return n;
}

NodePtr MakeCharSet(std::bitset<256> bytes) {
  auto n = MakeNode(Node::Kind::kCharSet);
  n->bytes = bytes;
  return n;
}

NodePtr MakeSingleChar(unsigned char c) {
  std::bitset<256> b;
  b.set(c);
  return MakeCharSet(b);
}

// Bounded repetition is compiled by duplicating the sub-automaton, so keep
// the bound small enough that hostile patterns cannot exhaust memory.
constexpr int kMaxBoundedRepeat = 256;

class Parser {
 public:
  explicit Parser(std::string_view pattern) : s_(pattern) {}

  Result<NodePtr> Parse() {
    auto alt = ParseAlt();
    if (!alt.ok()) return alt.status();
    if (pos_ != s_.size()) {
      return Status::ParseError("regex: unexpected ')' at offset " +
                                std::to_string(pos_));
    }
    return alt;
  }

 private:
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  char Next() { return s_[pos_++]; }

  Result<NodePtr> ParseAlt() {
    auto alt = MakeNode(Node::Kind::kAlt);
    auto first = ParseConcat();
    if (!first.ok()) return first.status();
    alt->children.push_back(std::move(first).value());
    while (!AtEnd() && Peek() == '|') {
      Next();
      auto branch = ParseConcat();
      if (!branch.ok()) return branch.status();
      alt->children.push_back(std::move(branch).value());
    }
    if (alt->children.size() == 1) return std::move(alt->children[0]);
    return NodePtr(std::move(alt));
  }

  Result<NodePtr> ParseConcat() {
    auto concat = MakeNode(Node::Kind::kConcat);
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto rep = ParseRepeat();
      if (!rep.ok()) return rep.status();
      concat->children.push_back(std::move(rep).value());
    }
    if (concat->children.empty()) return MakeNode(Node::Kind::kEmpty);
    if (concat->children.size() == 1) return std::move(concat->children[0]);
    return NodePtr(std::move(concat));
  }

  Result<NodePtr> ParseRepeat() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    NodePtr node = std::move(atom).value();
    while (!AtEnd()) {
      char c = Peek();
      int min = 0, max = 0;
      if (c == '*') {
        min = 0;
        max = -1;
      } else if (c == '+') {
        min = 1;
        max = -1;
      } else if (c == '?') {
        min = 0;
        max = 1;
      } else if (c == '{') {
        auto bounds = ParseBounds();
        if (!bounds.ok()) return bounds.status();
        min = bounds.value().first;
        max = bounds.value().second;
        // ParseBounds consumed through '}'; fall through to wrap.
        auto rep = MakeNode(Node::Kind::kRepeat);
        rep->min = min;
        rep->max = max;
        rep->children.push_back(std::move(node));
        node = std::move(rep);
        continue;
      } else {
        break;
      }
      Next();
      auto rep = MakeNode(Node::Kind::kRepeat);
      rep->min = min;
      rep->max = max;
      rep->children.push_back(std::move(node));
      node = std::move(rep);
    }
    return node;
  }

  // Parses "{m}", "{m,}" or "{m,n}" starting at '{'.
  Result<std::pair<int, int>> ParseBounds() {
    assert(Peek() == '{');
    Next();
    auto read_int = [&]() -> int {
      int v = -1;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        if (v < 0) v = 0;
        v = v * 10 + (Next() - '0');
        if (v > kMaxBoundedRepeat) return kMaxBoundedRepeat + 1;
      }
      return v;
    };
    int min = read_int();
    if (min < 0) return Status::ParseError("regex: bad repetition bound");
    int max = min;
    if (!AtEnd() && Peek() == ',') {
      Next();
      if (!AtEnd() && Peek() == '}') {
        max = -1;
      } else {
        max = read_int();
        if (max < 0) return Status::ParseError("regex: bad repetition bound");
      }
    }
    if (AtEnd() || Next() != '}') {
      return Status::ParseError("regex: unterminated {...} bound");
    }
    if (min > kMaxBoundedRepeat || max > kMaxBoundedRepeat) {
      return Status::ParseError("regex: repetition bound too large");
    }
    if (max >= 0 && max < min) {
      return Status::ParseError("regex: repetition bound max < min");
    }
    return std::make_pair(min, max);
  }

  Result<NodePtr> ParseAtom() {
    if (AtEnd()) return Status::ParseError("regex: dangling operator");
    char c = Next();
    switch (c) {
      case '(': {
        auto inner = ParseAlt();
        if (!inner.ok()) return inner.status();
        if (AtEnd() || Next() != ')') {
          return Status::ParseError("regex: missing ')'");
        }
        return inner;
      }
      case '.': {
        std::bitset<256> all;
        all.set();
        return MakeCharSet(all);
      }
      case '[':
        return ParseBracket();
      case '^':
        return MakeNode(Node::Kind::kAssertBegin);
      case '$':
        return MakeNode(Node::Kind::kAssertEnd);
      case '\\': {
        if (AtEnd()) return Status::ParseError("regex: trailing backslash");
        return MakeSingleChar(static_cast<unsigned char>(Next()));
      }
      case '*':
      case '+':
      case '?':
        return Status::ParseError("regex: repetition with nothing to repeat");
      default:
        return MakeSingleChar(static_cast<unsigned char>(c));
    }
  }

  Result<NodePtr> ParseBracket() {
    std::bitset<256> set;
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      negate = true;
      Next();
    }
    bool first = true;
    while (true) {
      if (AtEnd()) return Status::ParseError("regex: unterminated '['");
      char c = Next();
      if (c == ']' && !first) break;
      first = false;
      unsigned char lo = static_cast<unsigned char>(c);
      if (c == '\\') {
        if (AtEnd()) return Status::ParseError("regex: trailing backslash");
        lo = static_cast<unsigned char>(Next());
      }
      unsigned char hi = lo;
      // Range "a-z": '-' is literal when last before ']'.
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < s_.size() &&
          s_[pos_ + 1] != ']') {
        Next();  // '-'
        char h = Next();
        if (h == '\\') {
          if (AtEnd()) return Status::ParseError("regex: trailing backslash");
          h = Next();
        }
        hi = static_cast<unsigned char>(h);
        if (hi < lo) return Status::ParseError("regex: inverted range in '['");
      }
      for (int b = lo; b <= hi; ++b) set.set(b);
    }
    if (negate) set.flip();
    return MakeCharSet(set);
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Compilation: syntax tree -> NFA (Thompson construction with patch lists).
// ---------------------------------------------------------------------------

namespace {

// Nested bounded repeats multiply the duplicated sub-automata — "(a{256}){256}"
// would unroll to 64K byte states and another nesting level to 16M — so the
// builder stops materialising states past this cap and Compile reports
// ResourceExhausted. Each state holds a 256-bit byte set, so 64K states is
// ~2 MiB: ample for every legitimate pattern, harmless as a ceiling.
constexpr size_t kMaxNfaStates = 64 * 1024;

struct NfaBuilder {
  struct StateRep {
    enum class Kind : uint8_t { kByte, kSplit, kAssertBegin, kAssertEnd, kAccept };
    Kind kind;
    std::bitset<256> on_bytes;
    int next = -1;
    int next2 = -1;
  };

  struct Frag {
    int start = -1;
    std::vector<std::pair<int, int>> out;  // (state, 0=next / 1=next2)
  };

  std::vector<StateRep> states;
  bool overflow = false;

  int NewState(StateRep::Kind kind) {
    if (states.size() >= kMaxNfaStates) {
      overflow = true;
      return 0;
    }
    states.push_back(StateRep{kind, {}, -1, -1});
    return static_cast<int>(states.size()) - 1;
  }

  void Patch(const std::vector<std::pair<int, int>>& out, int target) {
    for (auto [st, which] : out) {
      if (which == 0) {
        states[st].next = target;
      } else {
        states[st].next2 = target;
      }
    }
  }

  Frag CompileNode(const Node& node) {
    // Once the cap is hit, stop doing work: every recursive call returns an
    // empty fragment immediately, so a hostile nested-repeat pattern costs
    // O(tree size), not O(unrolled automaton size). Patch() and the dangling
    // start=-1 are harmless because Compile discards the NFA on overflow.
    if (overflow) return Frag{};
    switch (node.kind) {
      case Node::Kind::kCharSet: {
        int s = NewState(StateRep::Kind::kByte);
        states[s].on_bytes = node.bytes;
        return Frag{s, {{s, 0}}};
      }
      case Node::Kind::kAssertBegin: {
        int s = NewState(StateRep::Kind::kAssertBegin);
        return Frag{s, {{s, 0}}};
      }
      case Node::Kind::kAssertEnd: {
        int s = NewState(StateRep::Kind::kAssertEnd);
        return Frag{s, {{s, 0}}};
      }
      case Node::Kind::kEmpty: {
        // A split whose both arms dangle acts as a pass-through epsilon.
        int s = NewState(StateRep::Kind::kSplit);
        return Frag{s, {{s, 0}, {s, 1}}};
      }
      case Node::Kind::kConcat: {
        Frag acc = CompileNode(*node.children[0]);
        for (size_t i = 1; i < node.children.size(); ++i) {
          Frag next = CompileNode(*node.children[i]);
          Patch(acc.out, next.start);
          acc.out = std::move(next.out);
        }
        return acc;
      }
      case Node::Kind::kAlt: {
        Frag acc = CompileNode(*node.children[0]);
        for (size_t i = 1; i < node.children.size(); ++i) {
          Frag rhs = CompileNode(*node.children[i]);
          int split = NewState(StateRep::Kind::kSplit);
          states[split].next = acc.start;
          states[split].next2 = rhs.start;
          Frag merged;
          merged.start = split;
          merged.out = std::move(acc.out);
          merged.out.insert(merged.out.end(), rhs.out.begin(), rhs.out.end());
          acc = std::move(merged);
        }
        return acc;
      }
      case Node::Kind::kRepeat:
        return CompileRepeat(*node.children[0], node.min, node.max);
    }
    // Unreachable; keep the compiler happy.
    return Frag{};
  }

  Frag CompileStar(const Node& child) {
    int split = NewState(StateRep::Kind::kSplit);
    Frag body = CompileNode(child);
    states[split].next = body.start;
    Patch(body.out, split);
    return Frag{split, {{split, 1}}};
  }

  Frag CompileOpt(const Node& child) {
    int split = NewState(StateRep::Kind::kSplit);
    Frag body = CompileNode(child);
    states[split].next = body.start;
    Frag out;
    out.start = split;
    out.out = std::move(body.out);
    out.out.push_back({split, 1});
    return out;
  }

  Frag CompileRepeat(const Node& child, int min, int max) {
    // {0,-1} = star; {1,-1} = plus; otherwise unroll.
    if (min == 0 && max == -1) return CompileStar(child);
    Frag acc;
    for (int i = 0; i < min; ++i) {
      Frag f = CompileNode(child);
      if (acc.start < 0) {
        acc = std::move(f);
      } else {
        Patch(acc.out, f.start);
        acc.out = std::move(f.out);
      }
    }
    if (max == -1) {
      Frag star = CompileStar(child);
      if (acc.start < 0) return star;
      Patch(acc.out, star.start);
      acc.out = std::move(star.out);
      return acc;
    }
    for (int i = min; i < max; ++i) {
      Frag opt = CompileOpt(child);
      if (acc.start < 0) {
        acc = std::move(opt);
      } else {
        Patch(acc.out, opt.start);
        acc.out = std::move(opt.out);
      }
    }
    if (acc.start < 0) {
      // {0,0}: matches empty string.
      int s = NewState(StateRep::Kind::kSplit);
      return Frag{s, {{s, 0}, {s, 1}}};
    }
    return acc;
  }
};

}  // namespace

Result<Regex> Regex::Compile(std::string_view pattern) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("rex.compile"));
  Parser parser(pattern);
  auto tree = parser.Parse();
  if (!tree.ok()) return tree.status();

  NfaBuilder builder;
  NfaBuilder::Frag frag = builder.CompileNode(*tree.value());
  int accept = builder.NewState(NfaBuilder::StateRep::Kind::kAccept);
  if (builder.overflow) {
    return Status::ResourceExhausted(
        "regex: compiled NFA exceeds " + std::to_string(kMaxNfaStates) +
        " states; simplify the pattern");
  }
  builder.Patch(frag.out, accept);

  Regex re;
  re.pattern_ = std::string(pattern);
  re.start_ = frag.start;
  re.states_.reserve(builder.states.size());
  for (const auto& s : builder.states) {
    State out;
    out.kind = static_cast<State::Kind>(s.kind);
    out.on_bytes = s.on_bytes;
    out.next = s.next;
    out.next2 = s.next2;
    re.states_.push_back(std::move(out));
  }
  return re;
}

// Adds `state` (following epsilon/assertion closure) to `list` if not already
// present in this generation.
void Regex::AddState(int state, size_t pos, size_t text_len,
                     std::vector<int>& list, std::vector<uint32_t>& mark,
                     uint32_t gen) const {
  if (state < 0) return;
  if (mark[static_cast<size_t>(state)] == gen) return;
  mark[static_cast<size_t>(state)] = gen;
  const State& s = states_[static_cast<size_t>(state)];
  switch (s.kind) {
    case State::Kind::kSplit:
      AddState(s.next, pos, text_len, list, mark, gen);
      AddState(s.next2, pos, text_len, list, mark, gen);
      return;
    case State::Kind::kAssertBegin:
      if (pos == 0) AddState(s.next, pos, text_len, list, mark, gen);
      return;
    case State::Kind::kAssertEnd:
      if (pos == text_len) AddState(s.next, pos, text_len, list, mark, gen);
      return;
    case State::Kind::kByte:
    case State::Kind::kAccept:
      list.push_back(state);
      return;
  }
}

bool Regex::Run(std::string_view text, bool anchored_start) const {
  std::vector<int> current, next;
  std::vector<uint32_t> mark(states_.size(), 0);
  uint32_t gen = 1;
  return RunWith(text, anchored_start, current, next, mark, gen);
}

bool Regex::RunWith(std::string_view text, bool anchored_start,
                    std::vector<int>& current, std::vector<int>& next,
                    std::vector<uint32_t>& mark, uint32_t& gen) const {
  current.clear();
  ++gen;
  AddState(start_, 0, text.size(), current, mark, gen);
  for (size_t pos = 0; pos <= text.size(); ++pos) {
    // Substring-search semantics: the match may begin at any position.
    if (!anchored_start && pos > 0) {
      AddState(start_, pos, text.size(), current, mark, gen);
    }
    for (int st : current) {
      if (states_[static_cast<size_t>(st)].kind == State::Kind::kAccept) {
        return true;
      }
    }
    if (pos == text.size()) break;
    unsigned char c = static_cast<unsigned char>(text[pos]);
    next.clear();
    ++gen;
    for (int st : current) {
      const State& s = states_[static_cast<size_t>(st)];
      if (s.kind == State::Kind::kByte && s.on_bytes.test(c)) {
        AddState(s.next, pos + 1, text.size(), next, mark, gen);
      }
    }
    current.swap(next);
  }
  return false;
}

bool Regex::Matches(std::string_view text) const {
  return Run(text, /*anchored_start=*/false);
}

std::vector<bool> Regex::MatchMany(
    const std::vector<std::string_view>& texts) const {
  std::vector<bool> out(texts.size(), false);
  BatchMatcher m(*this);
  for (size_t i = 0; i < texts.size(); ++i) {
    out[i] = m.Match(texts[i]);
  }
  return out;
}

bool BatchMatcher::Match(std::string_view text) {
  // The generation counter advances once per consumed byte; guard against
  // wraparound on long-lived matchers by resetting the marks.
  if (gen_ > 0xF0000000u) {
    std::fill(mark_.begin(), mark_.end(), 0u);
    gen_ = 1;
  }
  return re_->RunWith(text, /*anchored_start=*/false, current_, next_, mark_,
                      gen_);
}

bool Regex::FullMatch(std::string_view text) const {
  // Anchored at the start; require the accept state to be reached exactly at
  // the end. Simplest correct implementation: run an anchored simulation and
  // only report accept states seen at pos == text.size(). We reuse Run() by
  // wrapping the pattern, but that would re-compile; instead run inline.
  std::vector<int> current, next;
  std::vector<uint32_t> mark(states_.size(), 0);
  uint32_t gen = 1;
  AddState(start_, 0, text.size(), current, mark, gen);
  for (size_t pos = 0; pos < text.size(); ++pos) {
    unsigned char c = static_cast<unsigned char>(text[pos]);
    next.clear();
    ++gen;
    for (int st : current) {
      const State& s = states_[static_cast<size_t>(st)];
      if (s.kind == State::Kind::kByte && s.on_bytes.test(c)) {
        AddState(s.next, pos + 1, text.size(), next, mark, gen);
      }
    }
    current.swap(next);
    if (current.empty()) return false;
  }
  for (int st : current) {
    if (states_[static_cast<size_t>(st)].kind == State::Kind::kAccept) {
      return true;
    }
  }
  return false;
}

}  // namespace xprel::rex
