#ifndef XPREL_REX_REGEX_H_
#define XPREL_REX_REGEX_H_

#include <bitset>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace xprel::rex {

// A compiled regular expression over bytes, supporting the POSIX Extended
// Regular Expression (ERE) subset that the PPF path language emits (paper
// Table 1) plus the usual general constructs:
//
//   literals, '.', escaped metacharacters, bracket expressions [abc], [^a-z],
//   grouping (...), alternation |, repetition * + ? {m} {m,} {m,n},
//   anchors ^ and $.
//
// Matching is Thompson-NFA simulation: linear in pattern size times text
// size, no backtracking, so adversarial patterns cannot blow up — a property
// we rely on because patterns are derived from user XPath input.
//
// This class stands in for Oracle 10g's REGEXP_LIKE in the relational
// engine: Matches() has substring-search semantics (the pattern may match
// anywhere unless anchored), exactly like REGEXP_LIKE(text, pattern).
class BatchMatcher;

class Regex {
 public:
  static Result<Regex> Compile(std::string_view pattern);

  Regex(Regex&&) = default;
  Regex& operator=(Regex&&) = default;
  Regex(const Regex&) = default;
  Regex& operator=(const Regex&) = default;

  // True if the pattern matches any substring of `text` (REGEXP_LIKE
  // semantics; use ^...$ in the pattern for a full match).
  bool Matches(std::string_view text) const;

  // Batch evaluation: element i of the result is Matches(texts[i]). The NFA
  // state lists are allocated once for the whole batch, so evaluating a
  // pattern over every row of a relation (the planner's path-id bitmap
  // pre-filter) costs one allocation, not one per row.
  std::vector<bool> MatchMany(const std::vector<std::string_view>& texts) const;

  // True if the pattern matches the whole of `text`, regardless of anchors.
  bool FullMatch(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  // Number of NFA states; exposed for tests and benchmarks.
  size_t state_count() const { return states_.size(); }

 private:
  using ByteSet = std::bitset<256>;

  // NFA state. Exactly one of the following shapes:
  //  - byte transition: `on_bytes` nonempty, goes to `next`;
  //  - split: epsilon to `next` and `next2`;
  //  - assertion: epsilon to `next`, valid only at begin/end of text;
  //  - accept state.
  struct State {
    enum class Kind : uint8_t { kByte, kSplit, kAssertBegin, kAssertEnd, kAccept };
    Kind kind = Kind::kAccept;
    ByteSet on_bytes;
    int next = -1;
    int next2 = -1;
  };

  Regex() = default;

  bool Run(std::string_view text, bool anchored_start) const;
  bool RunWith(std::string_view text, bool anchored_start,
               std::vector<int>& current, std::vector<int>& next,
               std::vector<uint32_t>& mark, uint32_t& gen) const;
  void AddState(int state, size_t pos, size_t text_len,
                std::vector<int>& list, std::vector<uint32_t>& mark,
                uint32_t gen) const;

  std::string pattern_;
  std::vector<State> states_;
  int start_ = 0;

  friend class BatchMatcher;
};

// A reusable matching context bound to one Regex. The NFA state lists are
// allocated once at construction and reused across Match() calls, so
// evaluating a pattern over a stream of texts (the batch executor's
// REGEXP_LIKE filters) costs only the simulation per call — MatchMany with
// the batching turned inside out, for callers that produce their texts
// incrementally. Not thread-safe: create one per execution. The Regex must
// outlive the matcher.
class BatchMatcher {
 public:
  explicit BatchMatcher(const Regex& re)
      : re_(&re), mark_(re.states_.size(), 0) {}

  // Matches(text) with REGEXP_LIKE substring semantics.
  bool Match(std::string_view text);

 private:
  const Regex* re_;
  std::vector<int> current_, next_;
  std::vector<uint32_t> mark_;
  uint32_t gen_ = 1;
};

}  // namespace xprel::rex

#endif  // XPREL_REX_REGEX_H_
