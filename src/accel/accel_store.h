#ifndef XPREL_ACCEL_ACCEL_STORE_H_
#define XPREL_ACCEL_ACCEL_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "encoding/region.h"
#include "rel/table.h"
#include "xml/document.h"

namespace xprel::accel {

inline constexpr char kAccelTable[] = "Accel";
inline constexpr char kAttrTable[] = "AccelAttr";
inline constexpr char kPreColumn[] = "pre";
inline constexpr char kPostColumn[] = "post";
inline constexpr char kLevelColumn[] = "level";
inline constexpr char kSizeColumn[] = "size_";
inline constexpr char kParColumn[] = "par_pre";
inline constexpr char kNameColumn[] = "name";
inline constexpr char kTextColumn[] = "text";
inline constexpr char kAttrElemColumn[] = "elem_pre";
inline constexpr char kAttrNameColumn[] = "attr_name";
inline constexpr char kAttrValueColumn[] = "value";

// The XPath Accelerator document encoding (Grust et al.): one row per
// element with its pre/post region, level, subtree size and parent pre,
// stored both as relational tables (for the window-based SQL translation)
// and as in-memory arrays (for the staircase-join evaluator).
class AccelStore {
 public:
  static Result<std::unique_ptr<AccelStore>> Create(const xml::Document& doc);

  rel::Database& db() { return db_; }
  const rel::Database& db() const { return db_; }

  int32_t element_count() const { return static_cast<int32_t>(regions_.size()); }
  // 1-based pre rank accessors (pre == position in the preorder element
  // sequence).
  const encoding::Region& region(int32_t pre) const {
    return regions_[static_cast<size_t>(pre - 1)];
  }
  const std::string& name(int32_t pre) const {
    return names_[static_cast<size_t>(pre - 1)];
  }
  const std::string& text(int32_t pre) const {
    return texts_[static_cast<size_t>(pre - 1)];
  }
  const std::vector<int32_t>& children(int32_t pre) const {
    return children_[static_cast<size_t>(pre - 1)];
  }
  // Attribute value, or nullptr.
  const std::string* FindAttribute(int32_t pre, const std::string& name) const;
  bool HasAnyAttribute(int32_t pre) const;

  // Sorted pre ranks of all elements with the given tag.
  const std::vector<int32_t>* PresByName(const std::string& name) const;

  // Document node of a pre rank.
  xml::NodeId NodeOf(int32_t pre) const {
    return origin_[static_cast<size_t>(pre - 1)];
  }
  // Pre rank of an element node, or -1.
  int32_t PreOf(xml::NodeId node) const;

 private:
  AccelStore() = default;

  rel::Database db_;
  std::vector<encoding::Region> regions_;
  std::vector<std::string> names_;
  std::vector<std::string> texts_;
  std::vector<std::vector<int32_t>> children_;
  std::vector<std::map<std::string, std::string>> attrs_;
  std::map<std::string, std::vector<int32_t>> by_name_;
  std::vector<xml::NodeId> origin_;
  std::map<xml::NodeId, int32_t> pre_of_;
};

}  // namespace xprel::accel

#endif  // XPREL_ACCEL_ACCEL_STORE_H_
