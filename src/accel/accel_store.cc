#include "accel/accel_store.h"

#include <algorithm>

#include "common/fault_injection.h"

namespace xprel::accel {

using rel::TableSchema;
using rel::Value;
using rel::ValueType;

Result<std::unique_ptr<AccelStore>> AccelStore::Create(
    const xml::Document& doc) {
  XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("accel.build"));
  std::unique_ptr<AccelStore> store(new AccelStore());

  // Walk elements in document (preorder) order assigning pre ranks, and in
  // a second pass compute post ranks and subtree sizes.
  struct Elem {
    xml::NodeId node;
    int32_t parent_pre;
    int32_t level;
  };
  // Preorder DFS over the live tree (NOT the id range: after DML, ids are
  // no longer in document order and dead nodes linger in the array).
  std::vector<Elem> elems;
  if (doc.root() != xml::kNoNode) {
    std::vector<xml::NodeId> dfs{doc.root()};
    while (!dfs.empty()) {
      xml::NodeId id = dfs.back();
      dfs.pop_back();
      elems.push_back({id, -1, doc.node(id).depth});
      const std::vector<xml::NodeId>& ch = doc.node(id).children;
      for (auto it = ch.rbegin(); it != ch.rend(); ++it) {
        if (doc.IsElement(*it)) dfs.push_back(*it);
      }
    }
  }
  std::map<xml::NodeId, int32_t> pre_of;
  for (size_t i = 0; i < elems.size(); ++i) {
    pre_of[elems[i].node] = static_cast<int32_t>(i + 1);
  }
  for (Elem& e : elems) {
    xml::NodeId p = doc.node(e.node).parent;
    e.parent_pre = p == xml::kNoNode ? -1 : pre_of[p];
  }

  // Post ranks via a DFS that numbers children before parents. Since the
  // element list is preorder, post order can be computed by a stack scan.
  size_t n = elems.size();
  std::vector<int32_t> post(n, 0), size(n, 0);
  {
    std::vector<int32_t> post_counter(1, 0);
    // subtree size: count of elements with deeper level until the next
    // element at the same or shallower level.
    for (size_t i = 0; i < n; ++i) {
      size_t j = i + 1;
      while (j < n && elems[j].level > elems[i].level) ++j;
      size[i] = static_cast<int32_t>(j - i - 1);
    }
    // post rank: position in postorder traversal = pre + size adjusted;
    // compute directly: postorder index = index of node in the sequence
    // sorted by (end of subtree, depth descending). Simpler: recursive
    // numbering using the size array.
    int32_t counter = 0;
    // Iterative postorder over the preorder array: a node is emitted after
    // its subtree, i.e. nodes sorted by (i + size[i], -level) ascending.
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      size_t end_a = a + static_cast<size_t>(size[a]);
      size_t end_b = b + static_cast<size_t>(size[b]);
      if (end_a != end_b) return end_a < end_b;
      return elems[a].level > elems[b].level;
    });
    for (size_t i : order) post[i] = ++counter;
    (void)post_counter;
    (void)counter;
  }

  store->regions_.resize(n);
  store->names_.resize(n);
  store->texts_.resize(n);
  store->children_.resize(n);
  store->attrs_.resize(n);
  store->origin_.resize(n);

  for (size_t i = 0; i < n; ++i) {
    encoding::Region& r = store->regions_[i];
    r.pre = static_cast<int32_t>(i + 1);
    r.post = post[i];
    r.level = elems[i].level;
    r.size = size[i];
    r.parent_pre = elems[i].parent_pre;

    const xml::Node& node = doc.node(elems[i].node);
    store->names_[i] = node.name;
    std::string text;
    for (xml::NodeId c : node.children) {
      if (doc.node(c).kind == xml::NodeKind::kText) text += doc.node(c).text;
    }
    store->texts_[i] = std::move(text);
    for (const xml::Attribute& a : node.attributes) {
      store->attrs_[i][a.name] = a.value;
    }
    store->origin_[i] = elems[i].node;
    store->by_name_[node.name].push_back(static_cast<int32_t>(i + 1));
    if (elems[i].parent_pre > 0) {
      store->children_[static_cast<size_t>(elems[i].parent_pre - 1)].push_back(
          static_cast<int32_t>(i + 1));
    }
  }
  store->pre_of_ = std::move(pre_of);

  // Relational image.
  {
    TableSchema accel;
    accel.name = kAccelTable;
    accel.columns = {{kPreColumn, ValueType::kInt64, false},
                     {kPostColumn, ValueType::kInt64, false},
                     {kLevelColumn, ValueType::kInt64, false},
                     {kSizeColumn, ValueType::kInt64, false},
                     {kParColumn, ValueType::kInt64, true},
                     {kNameColumn, ValueType::kString, false},
                     {kTextColumn, ValueType::kString, true}};
    accel.indexes = {
        {"pk_Accel_pre", {0}, true},
        {"idx_Accel_post", {1}, false},
        {"idx_Accel_par", {4}, false},
        {"idx_Accel_name_pre", {5, 0}, false},
    };
    auto t = store->db_.CreateTable(std::move(accel));
    if (!t.ok()) return t.status();
    for (size_t i = 0; i < n; ++i) {
      const encoding::Region& r = store->regions_[i];
      XPREL_RETURN_IF_ERROR(t.value()->Insert(
          {Value::Int(r.pre), Value::Int(r.post), Value::Int(r.level),
           Value::Int(r.size),
           r.parent_pre > 0 ? Value::Int(r.parent_pre) : Value::Null(),
           Value::Str(store->names_[i]), Value::Str(store->texts_[i])}));
    }
  }
  {
    TableSchema attr;
    attr.name = kAttrTable;
    attr.columns = {{kAttrElemColumn, ValueType::kInt64, false},
                    {kAttrNameColumn, ValueType::kString, false},
                    {kAttrValueColumn, ValueType::kString, false}};
    attr.indexes = {
        {"idx_AccelAttr_elem", {0}, false},
        {"idx_AccelAttr_name_value", {1, 2}, false},
    };
    auto t = store->db_.CreateTable(std::move(attr));
    if (!t.ok()) return t.status();
    for (size_t i = 0; i < n; ++i) {
      for (const auto& [name, value] : store->attrs_[i]) {
        XPREL_RETURN_IF_ERROR(
            t.value()->Insert({Value::Int(static_cast<int64_t>(i + 1)),
                               Value::Str(name), Value::Str(value)}));
      }
    }
  }
  return store;
}

const std::string* AccelStore::FindAttribute(int32_t pre,
                                             const std::string& name) const {
  const auto& m = attrs_[static_cast<size_t>(pre - 1)];
  auto it = m.find(name);
  return it == m.end() ? nullptr : &it->second;
}

bool AccelStore::HasAnyAttribute(int32_t pre) const {
  return !attrs_[static_cast<size_t>(pre - 1)].empty();
}

const std::vector<int32_t>* AccelStore::PresByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

int32_t AccelStore::PreOf(xml::NodeId node) const {
  auto it = pre_of_.find(node);
  return it == pre_of_.end() ? -1 : it->second;
}

}  // namespace xprel::accel
