#include "accel/staircase.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "translate/ppf.h"
#include "xpath/parser.h"

namespace xprel::accel {

using encoding::Region;
using xpath::Axis;
using xpath::CompOp;
using xpath::Expr;
using xpath::LocationPath;
using xpath::NodeTestKind;
using xpath::Step;
using xpath::XPathExpr;

namespace {

void SortUnique(std::vector<int32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

// Emits pre ranks matching `step`'s name test within [lo, hi] using the
// name index when the test is a name, else the raw range.
template <typename Fn>
void ScanRange(const AccelStore& store, const Step& step, int32_t lo,
               int32_t hi, Fn&& emit) {
  if (lo > hi) return;
  if (step.test == NodeTestKind::kName) {
    const std::vector<int32_t>* pres = store.PresByName(step.name);
    if (pres == nullptr) return;
    auto it = std::lower_bound(pres->begin(), pres->end(), lo);
    for (; it != pres->end() && *it <= hi; ++it) emit(*it);
    return;
  }
  for (int32_t p = lo; p <= hi; ++p) emit(p);
}

}  // namespace

bool StaircaseEvaluator::MatchesTest(int32_t pre, const Step& step) const {
  switch (step.test) {
    case NodeTestKind::kName:
      return store_.name(pre) == step.name;
    case NodeTestKind::kWildcard:
    case NodeTestKind::kAnyNode:
      return true;
    case NodeTestKind::kText:
      return false;
  }
  return false;
}

Result<std::vector<int32_t>> StaircaseEvaluator::ApplyAxis(
    const std::vector<int32_t>& context, const Step& step,
    bool from_root) const {
  std::vector<int32_t> out;
  int32_t n = store_.element_count();

  if (from_root) {
    switch (step.axis) {
      case Axis::kChild:
        if (n >= 1 && MatchesTest(1, step)) out.push_back(1);
        return out;
      case Axis::kDescendant:
      case Axis::kDescendantOrSelf:
        ScanRange(store_, step, 1, n, [&](int32_t p) { out.push_back(p); });
        return out;
      default:
        return out;
    }
  }

  switch (step.axis) {
    case Axis::kChild:
      for (int32_t c : context) {
        for (int32_t k : store_.children(c)) {
          if (MatchesTest(k, step)) out.push_back(k);
        }
      }
      SortUnique(out);
      return out;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      // Staircase pruning: skip contexts covered by an earlier window.
      int32_t covered_until = 0;  // last pre covered so far
      bool or_self = step.axis == Axis::kDescendantOrSelf;
      for (int32_t c : context) {
        const Region& r = store_.region(c);
        int32_t lo = std::max(or_self ? r.pre : r.pre + 1,
                              covered_until + 1);
        int32_t hi = r.pre + r.size;
        ScanRange(store_, step, lo, hi, [&](int32_t p) { out.push_back(p); });
        covered_until = std::max(covered_until, hi);
      }
      SortUnique(out);
      return out;
    }
    case Axis::kSelf:
      for (int32_t c : context) {
        if (MatchesTest(c, step)) out.push_back(c);
      }
      return out;
    case Axis::kParent: {
      for (int32_t c : context) {
        int32_t p = store_.region(c).parent_pre;
        if (p > 0 && MatchesTest(p, step)) out.push_back(p);
      }
      SortUnique(out);
      return out;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      std::set<int32_t> seen;
      for (int32_t c : context) {
        int32_t cur = step.axis == Axis::kAncestorOrSelf
                          ? c
                          : store_.region(c).parent_pre;
        while (cur > 0 && seen.insert(cur).second) {
          cur = store_.region(cur).parent_pre;
        }
      }
      for (int32_t p : seen) {
        if (MatchesTest(p, step)) out.push_back(p);
      }
      return out;
    }
    case Axis::kFollowing: {
      if (context.empty()) return out;
      // The earliest context window opens the largest following region.
      int32_t min_end = INT32_MAX;
      for (int32_t c : context) {
        const Region& r = store_.region(c);
        min_end = std::min(min_end, r.pre + r.size);
      }
      ScanRange(store_, step, min_end + 1, n,
                [&](int32_t p) { out.push_back(p); });
      return out;
    }
    case Axis::kPreceding: {
      if (context.empty()) return out;
      // The latest context dominates (see header notes).
      int32_t c = context.back();
      const Region& r = store_.region(c);
      ScanRange(store_, step, 1, r.pre - 1, [&](int32_t p) {
        if (store_.region(p).post < r.post) out.push_back(p);
      });
      return out;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      for (int32_t c : context) {
        int32_t parent = store_.region(c).parent_pre;
        if (parent <= 0) continue;
        for (int32_t s : store_.children(parent)) {
          bool after = s > c;
          if (step.axis == Axis::kFollowingSibling ? after : (s < c)) {
            if (MatchesTest(s, step)) out.push_back(s);
          }
        }
      }
      SortUnique(out);
      return out;
    }
    case Axis::kAttribute:
      for (int32_t c : context) {
        if (step.test == NodeTestKind::kName) {
          if (store_.FindAttribute(c, step.name) != nullptr) out.push_back(c);
        } else if (store_.HasAnyAttribute(c)) {
          out.push_back(c);
        }
      }
      return out;
  }
  return out;
}

Result<std::vector<int32_t>> StaircaseEvaluator::ApplyStep(
    const std::vector<int32_t>& context, const Step& step,
    bool from_root) const {
  auto candidates = ApplyAxis(context, step, from_root);
  if (!candidates.ok()) return candidates.status();
  if (step.predicates.empty()) return candidates;
  std::vector<int32_t> filtered;
  for (int32_t p : candidates.value()) {
    bool keep = true;
    for (const xpath::ExprPtr& pred : step.predicates) {
      auto r = EvalPredicate(*pred, p);
      if (!r.ok()) return r.status();
      if (!r.value()) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(p);
  }
  return filtered;
}

Result<std::vector<int32_t>> StaircaseEvaluator::EvaluatePath(
    const LocationPath& path, const std::vector<int32_t>* ctx) const {
  if (path.steps.empty()) {
    return Status::Unsupported("a bare '/' selects the document root node");
  }
  bool from_root = ctx == nullptr || path.absolute;
  std::vector<int32_t> context;
  if (!from_root) context = *ctx;

  size_t step_count = path.steps.size();
  bool text_mode = false;
  const Step& last = path.steps.back();
  if (last.test == NodeTestKind::kText) {
    if (last.axis != Axis::kChild || !last.predicates.empty()) {
      return Status::Unsupported("text() only as a plain final step");
    }
    --step_count;
    text_mode = true;
    if (step_count == 0) {
      return Status::Unsupported("text() of the document root");
    }
  }

  for (size_t i = 0; i < step_count; ++i) {
    auto next = ApplyStep(context, path.steps[i], from_root && i == 0);
    if (!next.ok()) return next.status();
    context = std::move(next).value();
    if (context.empty()) break;
  }
  if (text_mode) {
    std::vector<int32_t> out;
    for (int32_t p : context) {
      if (!store_.text(p).empty()) out.push_back(p);
    }
    return out;
  }
  return context;
}

Result<StaircaseEvaluator::PathValues> StaircaseEvaluator::PredicatePathValues(
    int32_t pre, const LocationPath& raw_path) const {
  PathValues out;
  LocationPath path = translate::MergeConnectors(raw_path);
  if (path.steps.empty()) return out;
  std::vector<int32_t> ctx = {pre};

  size_t step_count = path.steps.size();
  bool text_mode = false;
  const Step& last = path.steps.back();
  if (last.test == NodeTestKind::kText && last.axis == Axis::kChild &&
      last.predicates.empty()) {
    --step_count;
    text_mode = true;
  }
  bool attr_mode = path.steps[step_count - 1].axis == Axis::kAttribute;

  std::vector<int32_t> context = path.absolute ? std::vector<int32_t>{} : ctx;
  for (size_t i = 0; i < step_count; ++i) {
    auto next =
        ApplyStep(context, path.steps[i], path.absolute && i == 0);
    if (!next.ok()) return next.status();
    context = std::move(next).value();
    if (context.empty()) return out;
  }

  if (attr_mode) {
    const Step& astep = path.steps[step_count - 1];
    for (int32_t p : context) {
      if (astep.test == NodeTestKind::kName) {
        const std::string* v = store_.FindAttribute(p, astep.name);
        if (v != nullptr) {
          out.values.push_back(*v);
          out.exists = true;
        }
      } else {
        out.exists = store_.HasAnyAttribute(p) || out.exists;
      }
    }
    return out;
  }
  for (int32_t p : context) {
    const std::string& v = store_.text(p);
    if (text_mode && v.empty()) continue;
    out.values.push_back(v);
    out.exists = true;
  }
  if (text_mode && out.values.empty()) out.exists = false;
  return out;
}

namespace {

bool CompareStrings(const std::string& a, const std::string& b, CompOp op) {
  int c = a.compare(b);
  switch (op) {
    case CompOp::kEq:
      return c == 0;
    case CompOp::kNe:
      return c != 0;
    case CompOp::kLt:
      return c < 0;
    case CompOp::kLe:
      return c <= 0;
    case CompOp::kGt:
      return c > 0;
    case CompOp::kGe:
      return c >= 0;
  }
  return false;
}

bool CompareNumbers(double a, double b, CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return a == b;
    case CompOp::kNe:
      return a != b;
    case CompOp::kLt:
      return a < b;
    case CompOp::kLe:
      return a <= b;
    case CompOp::kGt:
      return a > b;
    case CompOp::kGe:
      return a >= b;
  }
  return false;
}

}  // namespace

Result<bool> StaircaseEvaluator::EvalPredicate(const Expr& expr,
                                               int32_t pre) const {
  switch (expr.kind) {
    case Expr::Kind::kAnd: {
      auto a = EvalPredicate(*expr.children[0], pre);
      if (!a.ok()) return a.status();
      if (!a.value()) return false;
      return EvalPredicate(*expr.children[1], pre);
    }
    case Expr::Kind::kOr: {
      auto a = EvalPredicate(*expr.children[0], pre);
      if (!a.ok()) return a.status();
      if (a.value()) return true;
      return EvalPredicate(*expr.children[1], pre);
    }
    case Expr::Kind::kNot: {
      auto a = EvalPredicate(*expr.children[0], pre);
      if (!a.ok()) return a.status();
      return !a.value();
    }
    case Expr::Kind::kPath: {
      auto pv = PredicatePathValues(pre, expr.path);
      if (!pv.ok()) return pv.status();
      return pv.value().exists;
    }
    case Expr::Kind::kString:
      return !expr.str_value.empty();
    case Expr::Kind::kNumber:
    case Expr::Kind::kPosition:
      return Status::Unsupported("position() predicates are not supported");
    case Expr::Kind::kComparison: {
      const Expr& lhs = *expr.children[0];
      const Expr& rhs = *expr.children[1];
      if (lhs.kind == Expr::Kind::kPosition ||
          rhs.kind == Expr::Kind::kPosition) {
        return Status::Unsupported("position() predicates are not supported");
      }
      auto values_of = [&](const Expr& e) -> Result<PathValues> {
        if (e.kind == Expr::Kind::kPath) {
          return PredicatePathValues(pre, e.path);
        }
        PathValues v;
        if (e.kind == Expr::Kind::kString) {
          v.values.push_back(e.str_value);
          v.exists = true;
        }
        return v;
      };
      bool lhs_number = lhs.kind == Expr::Kind::kNumber;
      bool rhs_number = rhs.kind == Expr::Kind::kNumber;
      if (lhs_number && rhs_number) {
        return CompareNumbers(lhs.num_value, rhs.num_value, expr.op);
      }
      if (lhs_number || rhs_number) {
        const Expr& other = lhs_number ? rhs : lhs;
        double num = lhs_number ? lhs.num_value : rhs.num_value;
        auto pv = values_of(other);
        if (!pv.ok()) return pv.status();
        for (const std::string& v : pv.value().values) {
          auto d = ParseDouble(v);
          if (!d) continue;
          bool match = lhs_number ? CompareNumbers(num, *d, expr.op)
                                  : CompareNumbers(*d, num, expr.op);
          if (match) return true;
        }
        return false;
      }
      auto l = values_of(lhs);
      if (!l.ok()) return l.status();
      auto r = values_of(rhs);
      if (!r.ok()) return r.status();
      for (const std::string& a : l.value().values) {
        for (const std::string& b : r.value().values) {
          if (CompareStrings(a, b, expr.op)) return true;
        }
      }
      return false;
    }
  }
  return Status::Internal("unhandled predicate expression");
}

Result<std::vector<int32_t>> StaircaseEvaluator::Evaluate(
    const XPathExpr& expr) const {
  // Expansion removes -or-self name tests and stray connectors; merging
  // folds the remaining '//' connectors into strict descendant steps
  // (correct at the document root too; see translate/ppf.h).
  XPathExpr expanded = translate::ExpandOrSelfSteps(expr);
  std::vector<int32_t> out;
  for (LocationPath& branch : expanded.branches) {
    branch = translate::MergeConnectors(branch);
    auto r = EvaluatePath(branch, nullptr);
    if (!r.ok()) return r.status();
    out.insert(out.end(), r.value().begin(), r.value().end());
  }
  SortUnique(out);
  return out;
}

Result<std::vector<int32_t>> StaircaseEvaluator::EvaluateString(
    std::string_view xpath) const {
  auto parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return Evaluate(parsed.value());
}

}  // namespace xprel::accel
