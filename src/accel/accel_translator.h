#ifndef XPREL_ACCEL_ACCEL_TRANSLATOR_H_
#define XPREL_ACCEL_ACCEL_TRANSLATOR_H_

#include <string_view>

#include "common/result.h"
#include "translate/translator.h"
#include "xpath/ast.h"

namespace xprel::accel {

// Conventional XPath Accelerator translation (Grust et al., TODS 2004):
// one Accel self-join per XPath step, with pre/post window conditions using
// the *Staked-Out Query Window Sizes* bounds (descendant windows closed by
// pre <= context.pre + context.size, so a B-tree range scan can stop).
// This is the baseline the paper reimplements for its Figure 4 comparison.
// There is no path index: every step costs a join.
class AcceleratorTranslator {
 public:
  AcceleratorTranslator() = default;

  Result<translate::TranslatedQuery> Translate(
      const xpath::XPathExpr& expr) const;
  Result<translate::TranslatedQuery> TranslateString(
      std::string_view xpath) const;
};

}  // namespace xprel::accel

#endif  // XPREL_ACCEL_ACCEL_TRANSLATOR_H_
