#ifndef XPREL_ACCEL_STAIRCASE_H_
#define XPREL_ACCEL_STAIRCASE_H_

#include <string_view>
#include <vector>

#include "accel/accel_store.h"
#include "common/result.h"
#include "xpath/ast.h"

namespace xprel::accel {

// Staircase-join XPath evaluation over the pre/post encoding — the
// library's stand-in for MonetDB/XQuery (paper Section 5.2 credits the
// staircase join for MonetDB's wins on the '//'-heavy queries). Contexts
// are kept as sorted pre-rank lists; each hierarchy step:
//
//   * descendant: the context "staircase" is pruned — a context covered by
//     a predecessor's subtree window contributes nothing — then each
//     surviving window is answered with one name-index range probe, so the
//     document region is scanned at most once;
//   * ancestor: a merged parent-chain walk with a seen-set, O(result);
//   * following: a single open window starting at the earliest context's
//     subtree end;
//   * preceding: a single window from the latest context, filtered by post.
//
// Value semantics follow the library conventions (see
// xpatheval/evaluator.h); position() predicates are unsupported.
class StaircaseEvaluator {
 public:
  explicit StaircaseEvaluator(const AccelStore& store) : store_(store) {}

  // Returns matching pre ranks in document order.
  Result<std::vector<int32_t>> Evaluate(const xpath::XPathExpr& expr) const;
  Result<std::vector<int32_t>> EvaluateString(std::string_view xpath) const;

 private:
  // Applies axis+test of `step` to a sorted context list.
  Result<std::vector<int32_t>> ApplyAxis(const std::vector<int32_t>& context,
                                         const xpath::Step& step,
                                         bool from_root) const;
  Result<std::vector<int32_t>> ApplyStep(const std::vector<int32_t>& context,
                                         const xpath::Step& step,
                                         bool from_root) const;
  Result<std::vector<int32_t>> EvaluatePath(const xpath::LocationPath& path,
                                            const std::vector<int32_t>* ctx)
      const;

  bool MatchesTest(int32_t pre, const xpath::Step& step) const;

  Result<bool> EvalPredicate(const xpath::Expr& expr, int32_t pre) const;
  struct PathValues {
    std::vector<std::string> values;
    bool exists = false;
  };
  Result<PathValues> PredicatePathValues(int32_t pre,
                                         const xpath::LocationPath& path)
      const;

  const AccelStore& store_;
};

}  // namespace xprel::accel

#endif  // XPREL_ACCEL_STAIRCASE_H_
