#include "accel/accel_translator.h"

#include <cmath>
#include <string>

#include "accel/accel_store.h"
#include "translate/ppf.h"
#include "xpath/parser.h"

namespace xprel::accel {

using rel::Add;
using rel::Bin;
using rel::Col;
using rel::Exists;
using rel::LitInt;
using rel::LitStr;
using rel::SelectStmt;
using rel::SqlExpr;
using rel::SqlExprPtr;
using rel::Value;
using translate::TranslatedQuery;
using xpath::Axis;
using xpath::CompOp;
using xpath::Expr;
using xpath::LocationPath;
using xpath::NodeTestKind;
using xpath::Step;
using xpath::XPathExpr;

namespace {

SqlExpr::BinOp SqlOpOf(CompOp op) {
  switch (op) {
    case CompOp::kEq:
      return SqlExpr::BinOp::kEq;
    case CompOp::kNe:
      return SqlExpr::BinOp::kNe;
    case CompOp::kLt:
      return SqlExpr::BinOp::kLt;
    case CompOp::kLe:
      return SqlExpr::BinOp::kLe;
    case CompOp::kGt:
      return SqlExpr::BinOp::kGt;
    case CompOp::kGe:
      return SqlExpr::BinOp::kGe;
  }
  return SqlExpr::BinOp::kEq;
}

class AccelBranchTranslator {
 public:
  enum class ValueMode { kNone, kText };

  Result<std::unique_ptr<SelectStmt>> Translate(const LocationPath& path,
                                                ValueMode& mode) {
    if (path.steps.empty()) {
      return Status::Unsupported("a bare '/' selects the document root node");
    }
    LocationPath work = xpath::ClonePath(path);
    mode = ValueMode::kNone;
    const Step& last = work.steps.back();
    if (last.test == NodeTestKind::kText) {
      if (last.axis != Axis::kChild || !last.predicates.empty()) {
        return Status::Unsupported("text() only as a plain final step");
      }
      work.steps.pop_back();
      mode = ValueMode::kText;
      if (work.steps.empty()) {
        return Status::Unsupported("text() of the document root");
      }
    }
    work = translate::MergeConnectors(work);
    if (work.steps.back().axis == Axis::kAttribute) {
      return Status::Unsupported(
          "accelerator: attribute value projection not implemented");
    }

    stmt_ = std::make_unique<SelectStmt>();
    std::string prev;
    for (const Step& step : work.steps) {
      auto alias = ProcessStep(step, prev);
      if (!alias.ok()) return alias.status();
      prev = alias.value();
    }
    stmt_->distinct = true;
    stmt_->select.push_back({Col(prev, kPreColumn), "pre"});
    if (mode == ValueMode::kText) {
      stmt_->select.push_back({Col(prev, kTextColumn), "value"});
      AddWhere(Bin(SqlExpr::BinOp::kNe, Col(prev, kTextColumn), LitStr("")));
    }
    stmt_->order_by.push_back({Col(prev, kPreColumn), true});
    return std::move(stmt_);
  }

 private:
  std::string NewAlias() { return "V" + std::to_string(++alias_count_); }
  std::string NewAttrAlias() { return "W" + std::to_string(++attr_count_); }

  void AddWhere(SqlExprPtr cond) {
    stmt_->where = rel::And(std::move(stmt_->where), std::move(cond));
  }

  // Adds one step's alias with its window conditions; returns the alias.
  Result<std::string> ProcessStep(const Step& step, const std::string& prev) {
    if (step.axis == Axis::kAttribute) {
      return Status::Unsupported(
          "accelerator: attribute steps only in predicates");
    }
    std::string alias = NewAlias();
    stmt_->from.push_back({kAccelTable, alias});

    if (step.test == NodeTestKind::kName) {
      AddWhere(rel::Eq(Col(alias, kNameColumn), LitStr(step.name)));
    }

    auto pre = [&](const std::string& a) { return Col(a, kPreColumn); };
    auto post = [&](const std::string& a) { return Col(a, kPostColumn); };
    auto level = [&](const std::string& a) { return Col(a, kLevelColumn); };
    auto window_end = [&](const std::string& a) {
      return Add(Col(a, kPreColumn), Col(a, kSizeColumn));
    };

    if (prev.empty()) {
      // Context is the virtual document root.
      switch (step.axis) {
        case Axis::kChild:
          AddWhere(rel::Eq(level(alias), LitInt(1)));
          break;
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf:
          break;  // every element qualifies
        default:
          AddWhere(rel::Eq(LitInt(1), LitInt(0)));  // nothing there
          break;
      }
    } else {
      switch (step.axis) {
        case Axis::kChild:
          // The window + level conditions define "child"; the par_pre
          // equality is implied but gives the planner an equijoin for
          // upward navigation.
          AddWhere(rel::And(
              rel::And(Bin(SqlExpr::BinOp::kGt, pre(alias), pre(prev)),
                       Bin(SqlExpr::BinOp::kLe, pre(alias),
                           window_end(prev))),
              rel::And(rel::Eq(level(alias), Add(level(prev), LitInt(1))),
                       rel::Eq(Col(alias, kParColumn), pre(prev)))));
          break;
        case Axis::kDescendant:
          AddWhere(
              rel::And(Bin(SqlExpr::BinOp::kGt, pre(alias), pre(prev)),
                       Bin(SqlExpr::BinOp::kLe, pre(alias),
                           window_end(prev))));
          break;
        case Axis::kDescendantOrSelf:
          AddWhere(
              rel::And(Bin(SqlExpr::BinOp::kGe, pre(alias), pre(prev)),
                       Bin(SqlExpr::BinOp::kLe, pre(alias),
                           window_end(prev))));
          break;
        case Axis::kSelf:
          AddWhere(rel::Eq(pre(alias), pre(prev)));
          break;
        case Axis::kParent:
          AddWhere(rel::Eq(pre(alias), Col(prev, kParColumn)));
          break;
        case Axis::kAncestor:
          AddWhere(
              rel::And(Bin(SqlExpr::BinOp::kLt, pre(alias), pre(prev)),
                       Bin(SqlExpr::BinOp::kGt, post(alias), post(prev))));
          break;
        case Axis::kAncestorOrSelf:
          AddWhere(
              rel::And(Bin(SqlExpr::BinOp::kLe, pre(alias), pre(prev)),
                       Bin(SqlExpr::BinOp::kGe, post(alias), post(prev))));
          break;
        case Axis::kFollowing:
          AddWhere(Bin(SqlExpr::BinOp::kGt, pre(alias), window_end(prev)));
          break;
        case Axis::kPreceding:
          AddWhere(
              rel::And(Bin(SqlExpr::BinOp::kLt, pre(alias), pre(prev)),
                       Bin(SqlExpr::BinOp::kLt, post(alias), post(prev))));
          break;
        case Axis::kFollowingSibling:
          AddWhere(rel::And(
              rel::Eq(Col(alias, kParColumn), Col(prev, kParColumn)),
              Bin(SqlExpr::BinOp::kGt, pre(alias), pre(prev))));
          break;
        case Axis::kPrecedingSibling:
          AddWhere(rel::And(
              rel::Eq(Col(alias, kParColumn), Col(prev, kParColumn)),
              Bin(SqlExpr::BinOp::kLt, pre(alias), pre(prev))));
          break;
        case Axis::kAttribute:
          return Status::Unsupported("accelerator: attribute step");
      }
    }

    for (const xpath::ExprPtr& pred : step.predicates) {
      auto cond = TranslatePredicate(alias, *pred);
      if (!cond.ok()) return cond.status();
      AddWhere(std::move(cond).value());
    }
    return alias;
  }

  static bool IsAttributeOnlyPath(const LocationPath& path) {
    return !path.absolute && path.steps.size() == 1 &&
           path.steps[0].axis == Axis::kAttribute &&
           path.steps[0].predicates.empty();
  }

  SqlExprPtr AttrCondition(const std::string& ctx_alias, const Step& step,
                           const SqlExpr* lit, CompOp op) {
    auto sub = std::make_unique<SelectStmt>();
    std::string aa = NewAttrAlias();
    sub->from.push_back({kAttrTable, aa});
    sub->where =
        rel::Eq(Col(aa, kAttrElemColumn), Col(ctx_alias, kPreColumn));
    if (step.test == NodeTestKind::kName) {
      sub->where = rel::And(
          std::move(sub->where),
          rel::Eq(Col(aa, kAttrNameColumn), LitStr(step.name)));
    }
    if (lit != nullptr) {
      sub->where = rel::And(std::move(sub->where),
                            Bin(SqlOpOf(op), Col(aa, kAttrValueColumn),
                                rel::CloneSqlExpr(*lit)));
    }
    return Exists(std::move(sub));
  }

  Result<SqlExprPtr> TranslatePredicate(const std::string& ctx_alias,
                                        const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr: {
        auto a = TranslatePredicate(ctx_alias, *expr.children[0]);
        if (!a.ok()) return a.status();
        auto b = TranslatePredicate(ctx_alias, *expr.children[1]);
        if (!b.ok()) return b.status();
        return expr.kind == Expr::Kind::kAnd
                   ? rel::And(std::move(a).value(), std::move(b).value())
                   : rel::Or(std::move(a).value(), std::move(b).value());
      }
      case Expr::Kind::kNot: {
        auto a = TranslatePredicate(ctx_alias, *expr.children[0]);
        if (!a.ok()) return a.status();
        return rel::Not(std::move(a).value());
      }
      case Expr::Kind::kPath: {
        if (IsAttributeOnlyPath(expr.path)) {
          return AttrCondition(ctx_alias, expr.path.steps[0], nullptr,
                               CompOp::kEq);
        }
        return ExistsForPath(ctx_alias, expr.path, nullptr, CompOp::kEq,
                             nullptr);
      }
      case Expr::Kind::kComparison: {
        const Expr& lhs = *expr.children[0];
        const Expr& rhs = *expr.children[1];
        if (lhs.kind == Expr::Kind::kPosition ||
            rhs.kind == Expr::Kind::kPosition) {
          return Status::Unsupported("position() is not translatable");
        }
        auto literal_of = [](const Expr& e) -> SqlExprPtr {
          if (e.kind == Expr::Kind::kString) return LitStr(e.str_value);
          if (e.kind == Expr::Kind::kNumber) {
            double intpart = 0;
            if (std::modf(e.num_value, &intpart) == 0.0) {
              return LitInt(static_cast<int64_t>(intpart));
            }
            return rel::Lit(Value::Real(e.num_value));
          }
          return nullptr;
        };
        bool lhs_path = lhs.kind == Expr::Kind::kPath;
        bool rhs_path = rhs.kind == Expr::Kind::kPath;
        if (lhs_path && rhs_path) {
          return ExistsForPath(ctx_alias, lhs.path, nullptr, expr.op,
                               &rhs.path);
        }
        if (!lhs_path && !rhs_path) {
          return Status::Unsupported("constant comparison");
        }
        const LocationPath& path = lhs_path ? lhs.path : rhs.path;
        SqlExprPtr lit = literal_of(lhs_path ? rhs : lhs);
        if (lit == nullptr) {
          return Status::Unsupported("unsupported comparison operand");
        }
        CompOp op = expr.op;
        if (!lhs_path) {
          switch (op) {
            case CompOp::kLt:
              op = CompOp::kGt;
              break;
            case CompOp::kLe:
              op = CompOp::kGe;
              break;
            case CompOp::kGt:
              op = CompOp::kLt;
              break;
            case CompOp::kGe:
              op = CompOp::kLe;
              break;
            default:
              break;
          }
        }
        if (IsAttributeOnlyPath(path)) {
          return AttrCondition(ctx_alias, path.steps[0], lit.get(), op);
        }
        return ExistsForPath(ctx_alias, path, lit.get(), op, nullptr);
      }
      case Expr::Kind::kString:
      case Expr::Kind::kNumber:
      case Expr::Kind::kPosition:
        return Status::Unsupported("constant / position predicates");
    }
    return Status::Internal("unhandled predicate kind");
  }

  Result<SqlExprPtr> ExistsForPath(const std::string& ctx_alias,
                                   const LocationPath& path,
                                   const SqlExpr* lit, CompOp op,
                                   const LocationPath* join_path) {
    auto sub = std::make_unique<SelectStmt>();
    std::swap(stmt_, sub);
    auto restore = [&]() { std::swap(stmt_, sub); };

    auto chain = [&](const LocationPath& raw, bool* attr_final)
        -> Result<std::string> {
      LocationPath p = translate::MergeConnectors(raw);
      std::string prev = p.absolute ? "" : ctx_alias;
      *attr_final = false;
      for (size_t i = 0; i < p.steps.size(); ++i) {
        const Step& step = p.steps[i];
        if (step.axis == Axis::kAttribute) {
          if (i + 1 != p.steps.size()) {
            return Status::Unsupported("attribute steps only at path end");
          }
          *attr_final = true;
          return prev;  // the owner alias; caller uses AttrCondition
        }
        auto alias = ProcessStep(step, prev);
        if (!alias.ok()) return alias.status();
        prev = alias.value();
      }
      return prev;
    };

    bool attr_final = false;
    auto final_alias = chain(path, &attr_final);
    if (!final_alias.ok()) {
      restore();
      return final_alias.status();
    }
    if (attr_final) {
      SqlExprPtr cond = AttrCondition(
          final_alias.value(), path.steps.back(), lit, op);
      AddWhere(std::move(cond));
    } else if (lit != nullptr) {
      AddWhere(Bin(SqlOpOf(op), Col(final_alias.value(), kTextColumn),
                   rel::CloneSqlExpr(*lit)));
    }
    if (join_path != nullptr) {
      bool attr2 = false;
      auto alias2 = chain(*join_path, &attr2);
      if (!alias2.ok()) {
        restore();
        return alias2.status();
      }
      if (attr2) {
        restore();
        return Status::Unsupported(
            "accelerator: attribute operand in a join clause");
      }
      AddWhere(Bin(SqlOpOf(op), Col(final_alias.value(), kTextColumn),
                   Col(alias2.value(), kTextColumn)));
    }
    restore();
    return Exists(std::move(sub));
  }

  std::unique_ptr<SelectStmt> stmt_;
  int alias_count_ = 0;
  int attr_count_ = 0;
};

}  // namespace

Result<TranslatedQuery> AcceleratorTranslator::Translate(
    const XPathExpr& expr) const {
  XPathExpr expanded = translate::ExpandOrSelfSteps(expr);
  TranslatedQuery out;
  bool mode_set = false;
  AccelBranchTranslator::ValueMode overall =
      AccelBranchTranslator::ValueMode::kNone;
  for (const LocationPath& branch : expanded.branches) {
    AccelBranchTranslator bt;
    AccelBranchTranslator::ValueMode mode;
    auto stmt = bt.Translate(branch, mode);
    if (!stmt.ok()) return stmt.status();
    if (mode_set && mode != overall) {
      return Status::Unsupported(
          "union branches project incompatible results");
    }
    overall = mode;
    mode_set = true;
    out.sql.selects.push_back(std::move(stmt).value());
  }
  out.projects_value = overall != AccelBranchTranslator::ValueMode::kNone;
  out.statically_empty = out.sql.selects.empty();
  return out;
}

Result<TranslatedQuery> AcceleratorTranslator::TranslateString(
    std::string_view xpath) const {
  auto parsed = xpath::ParseXPath(xpath);
  if (!parsed.ok()) return parsed.status();
  return Translate(parsed.value());
}

}  // namespace xprel::accel
