#ifndef XPREL_ENCODING_REGION_H_
#define XPREL_ENCODING_REGION_H_

#include <cstdint>

namespace xprel::encoding {

// Pre/post region encoding used by the XPath Accelerator baseline
// (Grust et al., TODS 2004). `pre` is the preorder rank, `post` the
// postorder rank, `level` the depth (root = 1), `size` the number of
// descendants, and `parent_pre` the preorder rank of the parent (-1 at the
// root).
//
// Axis windows in the pre/post plane:
//   descendant(v):  pre in (v.pre, v.pre + v.size],  equivalently
//                   pre > v.pre  AND  post < v.post
//   ancestor(v):    pre < v.pre  AND  post > v.post
//   following(v):   pre > v.pre  AND  post > v.post
//   preceding(v):   pre < v.pre  AND  post < v.post
//
// The "Staked-Out Query Window Sizes" optimization replaces the open-ended
// descendant condition with the bounded window pre <= v.pre + v.size, which
// lets a B-tree range scan stop early; our Accelerator translator emits the
// bounded form.
struct Region {
  int32_t pre = 0;
  int32_t post = 0;
  int32_t level = 0;
  int32_t size = 0;
  int32_t parent_pre = -1;

  bool IsDescendantOf(const Region& v) const {
    return pre > v.pre && post < v.post;
  }
  bool IsAncestorOf(const Region& v) const {
    return pre < v.pre && post > v.post;
  }
  bool IsFollowing(const Region& v) const {
    return pre > v.pre && post > v.post;
  }
  bool IsPreceding(const Region& v) const {
    return pre < v.pre && post < v.post;
  }
};

}  // namespace xprel::encoding

#endif  // XPREL_ENCODING_REGION_H_
