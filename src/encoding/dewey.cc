#include "encoding/dewey.h"

#include <cassert>

#include "common/string_util.h"

namespace xprel::encoding {

void Dewey::AppendComponent(std::string& pos, uint32_t ordinal) {
  assert(ordinal <= kMaxComponent);
  pos.push_back(static_cast<char>((ordinal >> 16) & 0x7F));
  pos.push_back(static_cast<char>((ordinal >> 8) & 0xFF));
  pos.push_back(static_cast<char>(ordinal & 0xFF));
}

std::string Dewey::FromComponents(const std::vector<uint32_t>& components) {
  std::string pos;
  pos.reserve(components.size() * 3);
  for (uint32_t c : components) AppendComponent(pos, c);
  return pos;
}

std::string Dewey::Child(std::string_view parent, uint32_t ordinal) {
  std::string pos(parent);
  AppendComponent(pos, ordinal);
  return pos;
}

Result<std::vector<uint32_t>> Dewey::ToComponents(std::string_view pos) {
  if (pos.size() % 3 != 0) {
    return Status::InvalidArgument("dewey: length not a multiple of 3");
  }
  std::vector<uint32_t> out;
  out.reserve(pos.size() / 3);
  for (size_t i = 0; i < pos.size(); i += 3) {
    uint8_t b0 = static_cast<uint8_t>(pos[i]);
    uint8_t b1 = static_cast<uint8_t>(pos[i + 1]);
    uint8_t b2 = static_cast<uint8_t>(pos[i + 2]);
    if (b0 & 0x80) {
      return Status::InvalidArgument("dewey: component top bit set");
    }
    out.push_back((static_cast<uint32_t>(b0) << 16) |
                  (static_cast<uint32_t>(b1) << 8) | b2);
  }
  return out;
}

uint32_t Dewey::LastOrdinal(std::string_view pos) {
  if (pos.size() < 3) return 0;
  size_t i = pos.size() - 3;
  return (static_cast<uint32_t>(static_cast<uint8_t>(pos[i])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(pos[i + 1])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(pos[i + 2]));
}

std::string Dewey::UpperBound(std::string_view pos) {
  std::string out(pos);
  out.push_back(kMaxByte);
  return out;
}

bool Dewey::IsDescendant(std::string_view descendant,
                         std::string_view ancestor) {
  // Lemma 1: d(n2) > d(n1) and d(n2) < d(n1) || 0xFF.
  return descendant > ancestor && descendant < UpperBound(ancestor);
}

bool Dewey::IsFollowing(std::string_view pos, std::string_view ref) {
  // Lemma 2: d(n2) > d(n1) || 0xFF.
  return pos > UpperBound(ref);
}

bool Dewey::IsPreceding(std::string_view pos, std::string_view ref) {
  // Symmetric to Lemma 2 (Table 2 row 5): d(n1) > d(n2) || 0xFF.
  return ref > UpperBound(pos);
}

std::string Dewey::ToDotted(std::string_view pos) {
  auto comps = ToComponents(pos);
  if (!comps.ok()) return "<invalid>";
  std::string out;
  for (size_t i = 0; i < comps.value().size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(comps.value()[i]);
  }
  return out;
}

bool Dewey::OrdinalBetween(uint32_t before, uint32_t after, uint32_t* out) {
  if (after == kNoSibling) {
    // Appending past the last sibling: keep striding so later appends have
    // their own gaps, degrade to +1 near the component ceiling.
    if (before + kGapStride <= kMaxComponent) {
      *out = before + kGapStride;
      return true;
    }
    if (before + 1 <= kMaxComponent) {
      *out = before + 1;
      return true;
    }
    return false;
  }
  if (after <= before + 1) return false;  // no integer strictly between
  *out = before + (after - before) / 2;
  return true;
}

Result<std::string> Dewey::FromDotted(std::string_view dotted) {
  std::string pos;
  if (dotted.empty()) return pos;
  for (const std::string& part : SplitString(dotted, '.')) {
    auto v = ParseInt64(part);
    if (!v || *v < 0 || *v > kMaxComponent) {
      return Status::InvalidArgument("dewey: bad component '" + part + "'");
    }
    AppendComponent(pos, static_cast<uint32_t>(*v));
  }
  return pos;
}

}  // namespace xprel::encoding
