#ifndef XPREL_ENCODING_DEWEY_H_
#define XPREL_ENCODING_DEWEY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace xprel::encoding {

// Binary-string Dewey positions, exactly as in paper Section 4.2:
//
//   d(n) = C1 || C2 || ... || Ck
//
// where each component Ci is 3 bytes with the first bit zero, so components
// range over [0, 0x7FFFFF]. The empty string is the (virtual) position above
// the root; the root element is the single component "1".
//
// Because every component's first byte is <= 0x7F, appending the byte 0xFF
// (the paper's `|| 'F'`) to a position yields a string lexicographically
// greater than every descendant's position and smaller than every following
// node's position — this is what Lemmas 1 and 2 rest on. All structural
// relationships (Table 2) reduce to plain byte-wise comparisons, which is
// what the relational engine executes.
class Dewey {
 public:
  static constexpr uint32_t kMaxComponent = 0x7FFFFF;
  static constexpr char kMaxByte = static_cast<char>(0xFF);

  // Encodes one 3-byte component. `ordinal` must be <= kMaxComponent.
  static void AppendComponent(std::string& pos, uint32_t ordinal);

  // Builds a position from component values, e.g. {1,1,2} for "1.1.2".
  static std::string FromComponents(const std::vector<uint32_t>& components);

  // Child position of `parent` with the given 1-based local order.
  static std::string Child(std::string_view parent, uint32_t ordinal);

  // Splits a binary position back into component values. Errors if the
  // length is not a multiple of 3 or a component has its top bit set.
  static Result<std::vector<uint32_t>> ToComponents(std::string_view pos);

  // Number of components == node level (root = 1).
  static int Level(std::string_view pos) { return static_cast<int>(pos.size() / 3); }

  // Position of the parent (empty for the root).
  static std::string_view Parent(std::string_view pos) {
    return pos.substr(0, pos.size() >= 3 ? pos.size() - 3 : 0);
  }

  // Local order encoded in the last component; 0 for the empty position.
  static uint32_t LastOrdinal(std::string_view pos);

  // d || 0xFF — the upper bound used by the BETWEEN conditions of Table 2.
  static std::string UpperBound(std::string_view pos);

  // Structural predicates (Lemmas 1-2 and their axis variants). `a` and `d`
  // are full binary positions.
  static bool IsDescendant(std::string_view descendant, std::string_view ancestor);
  static bool IsAncestor(std::string_view ancestor, std::string_view descendant) {
    return IsDescendant(descendant, ancestor);
  }
  // Document-order "following" (after `ref` and not its descendant).
  static bool IsFollowing(std::string_view pos, std::string_view ref);
  // Document-order "preceding" (before `ref` and not its ancestor).
  static bool IsPreceding(std::string_view pos, std::string_view ref);
  static bool IsSibling(std::string_view a, std::string_view b) {
    return a.size() == b.size() && !a.empty() && Parent(a) == Parent(b);
  }

  // Human-readable form "1.1.2" for debugging and SQL text.
  static std::string ToDotted(std::string_view pos);
  // Parses "1.1.2" back to the binary form.
  static Result<std::string> FromDotted(std::string_view dotted);

  // --- Gap allocation (ORDPATH-style careting) ---
  //
  // Bulk loads assign child ordinals in strides of kGapStride (8, 16, 24,
  // ...), leaving 7 unused ordinals between adjacent siblings. A later
  // insertion between two siblings takes the midpoint of the surrounding
  // ordinals; only when a gap is exhausted does the owner fall back to
  // renumbering the parent's children (tracked as `dewey_renumbers`).

  static constexpr uint32_t kGapStride = 8;

  // Ordinal for the child at 0-based bulk-load position `index`:
  // (index + 1) * kGapStride. kMaxComponent / kGapStride ≈ 1M children.
  static uint32_t StridedOrdinal(uint32_t index) {
    return (index + 1) * kGapStride;
  }
  static std::string StridedChild(std::string_view parent, uint32_t index) {
    return Child(parent, StridedOrdinal(index));
  }

  // Ordinal strictly between `before` and `after` (both exclusive). Pass
  // before = 0 to insert in front of the first sibling; pass
  // after = kNoSibling to append past the last one (which takes
  // before + kGapStride when it fits, so appends keep their own gaps).
  // Returns false when the gap is exhausted and the caller must renumber.
  static constexpr uint32_t kNoSibling = 0xFFFFFFFF;
  static bool OrdinalBetween(uint32_t before, uint32_t after, uint32_t* out);
};

}  // namespace xprel::encoding

#endif  // XPREL_ENCODING_DEWEY_H_
