#include "xsd/xsd_parser.h"

#include <algorithm>
#include <map>
#include <string>

#include "common/string_util.h"
#include "xml/parser.h"

namespace xprel::xsd {

namespace {

// Strips a namespace prefix: "xs:element" -> "element".
std::string_view LocalName(std::string_view qname) {
  size_t colon = qname.find(':');
  return colon == std::string_view::npos ? qname : qname.substr(colon + 1);
}

class XsdBuilder {
 public:
  explicit XsdBuilder(const xml::Document& doc) : doc_(doc) {}

  Result<Schema> Build() {
    xml::NodeId root = doc_.root();
    if (root == xml::kNoNode || LocalName(doc_.node(root).name) != "schema") {
      return Status::ParseError("xsd: document root is not xs:schema");
    }

    // Pass 0: register global named complex types and global elements so
    // that type= and ref= references (including forward ones) resolve.
    for (xml::NodeId child : doc_.node(root).children) {
      if (!doc_.IsElement(child)) continue;
      std::string_view local = LocalName(doc_.node(child).name);
      if (local == "complexType") {
        const std::string* name = doc_.FindAttribute(child, "name");
        if (name == nullptr) {
          return Status::ParseError("xsd: global complexType without name");
        }
        ComplexType t;
        t.name = *name;
        int id = schema_.AddType(std::move(t));
        named_types_[*name] = id;
      } else if (local == "element") {
        const std::string* name = doc_.FindAttribute(child, "name");
        if (name == nullptr) {
          return Status::ParseError("xsd: global element without name");
        }
        ElementDecl d;
        d.name = *name;
        d.is_global = true;
        int id = schema_.AddElement(std::move(d));
        global_elements_[*name] = id;
        schema_.AddGlobalElement(id);
      }
    }

    // Pass 1: fill in content models.
    for (xml::NodeId child : doc_.node(root).children) {
      if (!doc_.IsElement(child)) continue;
      std::string_view local = LocalName(doc_.node(child).name);
      if (local == "complexType") {
        const std::string* name = doc_.FindAttribute(child, "name");
        int tid = named_types_[*name];
        XPREL_RETURN_IF_ERROR(FillComplexType(child, tid));
      } else if (local == "element") {
        const std::string* name = doc_.FindAttribute(child, "name");
        int eid = global_elements_[*name];
        XPREL_RETURN_IF_ERROR(FillElement(child, eid));
      }
    }
    return std::move(schema_);
  }

 private:
  // Resolves the declared type of an element node onto decl `eid`.
  Status FillElement(xml::NodeId node, int eid) {
    const std::string* type_name = doc_.FindAttribute(node, "type");
    if (type_name != nullptr) {
      std::string_view local = LocalName(*type_name);
      auto it = named_types_.find(std::string(local));
      if (it != named_types_.end()) {
        schema_.element(eid).type_id = it->second;
        return Status::Ok();
      }
      // Built-in simple type (xs:string, xs:integer, ...): text-only.
      schema_.element(eid).type_id = -1;
      return Status::Ok();
    }
    // Inline anonymous complexType?
    for (xml::NodeId child : doc_.node(node).children) {
      if (!doc_.IsElement(child)) continue;
      if (LocalName(doc_.node(child).name) == "complexType") {
        ComplexType t;  // anonymous
        int tid = schema_.AddType(std::move(t));
        schema_.element(eid).type_id = tid;
        return FillComplexType(child, tid);
      }
    }
    // No type information: simple text element.
    schema_.element(eid).type_id = -1;
    return Status::Ok();
  }

  Status FillComplexType(xml::NodeId node, int tid) {
    const std::string* mixed = doc_.FindAttribute(node, "mixed");
    if (mixed != nullptr && *mixed == "true") {
      schema_.type(tid).has_text = true;
    }
    return CollectParticles(node, tid);
  }

  // Walks the content of a complexType / group node, flattening particles.
  Status CollectParticles(xml::NodeId node, int tid) {
    for (xml::NodeId child : doc_.node(node).children) {
      if (!doc_.IsElement(child)) continue;
      std::string_view local = LocalName(doc_.node(child).name);
      if (local == "sequence" || local == "choice" || local == "all") {
        XPREL_RETURN_IF_ERROR(CollectParticles(child, tid));
      } else if (local == "element") {
        auto eid = ResolveChildElement(child);
        if (!eid.ok()) return eid.status();
        auto& decls = schema_.type(tid).child_decls;
        if (std::find(decls.begin(), decls.end(), eid.value()) ==
            decls.end()) {
          decls.push_back(eid.value());
        }
      } else if (local == "attribute") {
        const std::string* name = doc_.FindAttribute(child, "name");
        if (name == nullptr) {
          return Status::ParseError("xsd: attribute without name");
        }
        schema_.type(tid).attributes.push_back(*name);
      } else if (local == "simpleContent" || local == "complexContent") {
        for (xml::NodeId ext : doc_.node(child).children) {
          if (!doc_.IsElement(ext)) continue;
          std::string_view ext_local = LocalName(doc_.node(ext).name);
          if (ext_local == "extension" || ext_local == "restriction") {
            if (local == "simpleContent") schema_.type(tid).has_text = true;
            XPREL_RETURN_IF_ERROR(CollectParticles(ext, tid));
          }
        }
      }
      // xs:annotation and others: ignored.
    }
    return Status::Ok();
  }

  // A child xs:element particle: ref= to a global, or a local declaration.
  Result<int> ResolveChildElement(xml::NodeId node) {
    const std::string* ref = doc_.FindAttribute(node, "ref");
    if (ref != nullptr) {
      std::string local(LocalName(*ref));
      auto it = global_elements_.find(local);
      if (it == global_elements_.end()) {
        return Status::ParseError("xsd: unresolved element ref '" + local +
                                  "'");
      }
      return it->second;
    }
    const std::string* name = doc_.FindAttribute(node, "name");
    if (name == nullptr) {
      return Status::ParseError("xsd: element without name or ref");
    }
    ElementDecl d;
    d.name = *name;
    int eid = schema_.AddElement(std::move(d));
    XPREL_RETURN_IF_ERROR(FillElement(node, eid));
    return eid;
  }

  const xml::Document& doc_;
  Schema schema_;
  std::map<std::string, int> named_types_;
  std::map<std::string, int> global_elements_;
};

}  // namespace

Result<Schema> ParseXsd(std::string_view xsd_text) {
  auto doc = xml::ParseXml(xsd_text);
  if (!doc.ok()) return doc.status();
  XsdBuilder builder(doc.value());
  return builder.Build();
}

}  // namespace xprel::xsd
