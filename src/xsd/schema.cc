#include "xsd/schema.h"

#include <set>

namespace xprel::xsd {

int Schema::FindGlobalElement(const std::string& name) const {
  for (int id : global_elements_) {
    if (elements_[static_cast<size_t>(id)].name == name) return id;
  }
  return -1;
}

int Schema::FindNamedType(const std::string& name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name && !types_[i].name.empty()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<int> Schema::RootElements() const {
  std::set<int> referenced;
  for (const ComplexType& t : types_) {
    for (int c : t.child_decls) referenced.insert(c);
  }
  std::vector<int> roots;
  for (int id : global_elements_) {
    if (referenced.count(id) == 0) roots.push_back(id);
  }
  if (roots.empty()) roots = global_elements_;
  return roots;
}

}  // namespace xprel::xsd
