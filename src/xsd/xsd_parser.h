#ifndef XPREL_XSD_XSD_PARSER_H_
#define XPREL_XSD_XSD_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xsd/schema.h"

namespace xprel::xsd {

// Parses an XML Schema document covering the subset the paper's mapping
// needs:
//
//   xs:schema          with any prefix bound to the XSD namespace
//   xs:element         name= with inline xs:complexType, name= with type=
//                      (named complex type or built-in simple type), or ref=
//   xs:complexType     named (global) or anonymous, mixed=
//   xs:sequence / xs:choice / xs:all    arbitrarily nested; flattened
//   xs:attribute       name=
//   xs:simpleContent/xs:extension       text plus attributes
//
// Occurrence bounds are accepted and ignored — relational multiplicity is
// carried by foreign keys, not by the mapping. Forward references are
// resolved in a second pass.
Result<Schema> ParseXsd(std::string_view xsd_text);

}  // namespace xprel::xsd

#endif  // XPREL_XSD_XSD_PARSER_H_
