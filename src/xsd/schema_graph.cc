#include "xsd/schema_graph.h"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace xprel::xsd {

const char* PathClassName(PathClass c) {
  switch (c) {
    case PathClass::kUniquePath:
      return "U-P";
    case PathClass::kFinitePaths:
      return "F-P";
    case PathClass::kInfinitePaths:
      return "I-P";
  }
  return "?";
}

Result<SchemaGraph> SchemaGraph::Build(const Schema& schema) {
  SchemaGraph g;
  g.schema_ = &schema;
  size_t n = schema.elements().size();
  g.nodes_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const ElementDecl& d = schema.element(static_cast<int>(i));
    GraphNode& node = g.nodes_[i];
    node.decl_id = static_cast<int>(i);
    node.tag = d.name;
    node.type_id = d.type_id;
    if (d.type_id >= 0) {
      const ComplexType& t = schema.type(d.type_id);
      node.has_text = t.has_text;
      node.attributes = t.attributes;
      node.children = t.child_decls;
    } else {
      node.has_text = true;  // simple elements carry text
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (int c : g.nodes_[i].children) {
      g.nodes_[static_cast<size_t>(c)].parents.push_back(static_cast<int>(i));
    }
  }

  g.roots_ = schema.RootElements();
  for (int r : g.roots_) g.nodes_[static_cast<size_t>(r)].is_root = true;

  // Reachability from the roots.
  {
    std::vector<int> stack = g.roots_;
    while (!stack.empty()) {
      int id = stack.back();
      stack.pop_back();
      GraphNode& node = g.nodes_[static_cast<size_t>(id)];
      if (node.reachable) continue;
      node.reachable = true;
      for (int c : node.children) stack.push_back(c);
    }
  }

  // Cycle detection on the reachable subgraph (iterative DFS, colors).
  std::vector<int> color(n, 0);  // 0 = white, 1 = on stack, 2 = done
  std::set<int> cycle_nodes;
  {
    std::function<void(int)> dfs = [&](int u) {
      color[static_cast<size_t>(u)] = 1;
      for (int v : g.nodes_[static_cast<size_t>(u)].children) {
        if (!g.nodes_[static_cast<size_t>(v)].reachable) continue;
        if (color[static_cast<size_t>(v)] == 0) {
          dfs(v);
        } else if (color[static_cast<size_t>(v)] == 1) {
          // Back edge: v and u lie on a cycle. Recording both suffices for
          // the reachability-based propagation below.
          cycle_nodes.insert(v);
          cycle_nodes.insert(u);
        }
      }
      color[static_cast<size_t>(u)] = 2;
    };
    for (int r : g.roots_) {
      if (color[static_cast<size_t>(r)] == 0) dfs(r);
    }
  }

  // I-P = reachable from some cycle node (cycle nodes included): every root
  // path into the cycle can loop arbitrarily before continuing to the node.
  std::vector<bool> infinite(n, false);
  {
    std::vector<int> stack(cycle_nodes.begin(), cycle_nodes.end());
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      if (infinite[static_cast<size_t>(u)]) continue;
      infinite[static_cast<size_t>(u)] = true;
      for (int v : g.nodes_[static_cast<size_t>(u)].children) {
        if (g.nodes_[static_cast<size_t>(v)].reachable) stack.push_back(v);
      }
    }
  }

  // Enumerate root paths for non-I-P nodes, memoized over parents. Paths of
  // a node = paths of each reachable parent + "/tag"; roots contribute
  // "/tag". Termination: no cycle can lie on a root path of a non-I-P node.
  std::vector<std::vector<std::string>> memo(n);
  std::vector<bool> computed(n, false);
  std::function<const std::vector<std::string>&(int)> paths_of =
      [&](int u) -> const std::vector<std::string>& {
    if (computed[static_cast<size_t>(u)]) return memo[static_cast<size_t>(u)];
    computed[static_cast<size_t>(u)] = true;
    std::vector<std::string>& out = memo[static_cast<size_t>(u)];
    const GraphNode& node = g.nodes_[static_cast<size_t>(u)];
    if (node.is_root) out.push_back("/" + node.tag);
    for (int p : node.parents) {
      if (!g.nodes_[static_cast<size_t>(p)].reachable) continue;
      if (infinite[static_cast<size_t>(p)]) continue;  // guarded by caller
      for (const std::string& pp : paths_of(p)) {
        out.push_back(pp + "/" + node.tag);
        if (out.size() > kMaxEnumeratedPaths) return out;
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  for (size_t i = 0; i < n; ++i) {
    GraphNode& node = g.nodes_[i];
    if (!node.reachable) continue;
    if (infinite[i]) {
      node.path_class = PathClass::kInfinitePaths;
      continue;
    }
    const std::vector<std::string>& paths = paths_of(static_cast<int>(i));
    if (paths.size() > kMaxEnumeratedPaths) {
      node.path_class = PathClass::kInfinitePaths;
      continue;
    }
    node.root_paths = paths;
    node.path_class = paths.size() == 1 ? PathClass::kUniquePath
                                        : PathClass::kFinitePaths;
    if (paths.empty()) {
      return Status::Internal("schema graph: reachable node '" + node.tag +
                              "' has no root path");
    }
  }

  return g;
}

std::vector<int> SchemaGraph::NodesByTag(const std::string& tag) const {
  std::vector<int> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].reachable && nodes_[i].tag == tag) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<int> SchemaGraph::ReachableNodes() const {
  std::vector<int> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].reachable) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::string SchemaGraph::DescribeMarking() const {
  std::ostringstream os;
  for (const GraphNode& node : nodes_) {
    if (!node.reachable) continue;
    os << node.tag << ": " << PathClassName(node.path_class);
    if (node.path_class != PathClass::kInfinitePaths) {
      os << " {";
      for (size_t i = 0; i < node.root_paths.size(); ++i) {
        if (i > 0) os << ", ";
        os << node.root_paths[i];
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace xprel::xsd
