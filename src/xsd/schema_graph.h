#ifndef XPREL_XSD_SCHEMA_GRAPH_H_
#define XPREL_XSD_SCHEMA_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xsd/schema.h"

namespace xprel::xsd {

// Classification of schema-graph nodes by the number of distinct
// root-to-node paths (paper Section 4.5, Figure 2):
//   kUniquePath    (U-P): exactly one — the Paths join can always be omitted
//   kFinitePaths   (F-P): finitely many — the translator tests the regex
//                         against each enumerated path at translation time
//   kInfinitePaths (I-P): a cycle (recursive schema) lies on some root path
enum class PathClass { kUniquePath, kFinitePaths, kInfinitePaths };

const char* PathClassName(PathClass c);

// One node of the schema graph: an element declaration, with nesting edges
// to/from other declarations (paper Section 2.1). Node ids coincide with
// ElementDecl ids in the Schema.
struct GraphNode {
  int decl_id = -1;
  std::string tag;
  int type_id = -1;
  bool has_text = false;
  std::vector<std::string> attributes;

  std::vector<int> children;  // node ids
  std::vector<int> parents;
  bool is_root = false;       // document root declaration
  bool reachable = false;     // reachable from some root

  PathClass path_class = PathClass::kUniquePath;
  // All root-to-node paths like "/site/regions/item", for U-P and F-P nodes
  // (F-P enumeration is capped; overflow demotes the node to I-P).
  std::vector<std::string> root_paths;
};

// The directed graph representation of an XML Schema, annotated with the
// U-P / F-P / I-P marking. Built once per schema; read by the shredder (to
// assign relations and validate documents) and by the translator (to bind
// steps to relations and to decide when path filtering is redundant).
class SchemaGraph {
 public:
  // Maximum number of root paths enumerated for an F-P node before it is
  // conservatively treated as I-P.
  static constexpr size_t kMaxEnumeratedPaths = 64;

  static Result<SchemaGraph> Build(const Schema& schema);

  const Schema& schema() const { return *schema_; }
  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const GraphNode& node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  const std::vector<int>& roots() const { return roots_; }

  // All reachable nodes whose tag matches `tag`.
  std::vector<int> NodesByTag(const std::string& tag) const;
  // All reachable nodes.
  std::vector<int> ReachableNodes() const;

  // Renders the marking like Figure 2, for debugging and docs.
  std::string DescribeMarking() const;

 private:
  const Schema* schema_ = nullptr;
  std::vector<GraphNode> nodes_;
  std::vector<int> roots_;
};

}  // namespace xprel::xsd

#endif  // XPREL_XSD_SCHEMA_GRAPH_H_
