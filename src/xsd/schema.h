#ifndef XPREL_XSD_SCHEMA_H_
#define XPREL_XSD_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

namespace xprel::xsd {

// A complex type: the content model of elements instantiating it. Content
// particles (sequence / choice / all, nesting, occurrence bounds) are
// flattened to the set of allowed child element declarations — that is all
// the mapping and the translator need (paper Section 2.1 models the schema
// as a graph of nesting edges).
struct ComplexType {
  std::string name;  // empty for anonymous (inline) types
  bool has_text = false;  // simple content or mixed content
  std::vector<std::string> attributes;
  std::vector<int> child_decls;  // ElementDecl ids
};

// One element declaration. Global declarations can be referenced (ref=) from
// many types; local declarations live inside one type's content model.
struct ElementDecl {
  std::string name;    // tag
  int type_id = -1;    // ComplexType id; -1 = simple text-only element
  bool is_global = false;
};

// The schema object model produced by the XSD parser.
class Schema {
 public:
  int AddType(ComplexType type) {
    types_.push_back(std::move(type));
    return static_cast<int>(types_.size()) - 1;
  }
  int AddElement(ElementDecl decl) {
    elements_.push_back(std::move(decl));
    return static_cast<int>(elements_.size()) - 1;
  }

  const std::vector<ElementDecl>& elements() const { return elements_; }
  const std::vector<ComplexType>& types() const { return types_; }
  ElementDecl& element(int id) { return elements_[static_cast<size_t>(id)]; }
  const ElementDecl& element(int id) const {
    return elements_[static_cast<size_t>(id)];
  }
  ComplexType& type(int id) { return types_[static_cast<size_t>(id)]; }
  const ComplexType& type(int id) const {
    return types_[static_cast<size_t>(id)];
  }

  // Ids of global element declarations, in declaration order.
  const std::vector<int>& global_elements() const { return global_elements_; }
  void AddGlobalElement(int id) { global_elements_.push_back(id); }

  // Global element by tag, or -1.
  int FindGlobalElement(const std::string& name) const;
  // Named global type, or -1.
  int FindNamedType(const std::string& name) const;

  // Document root declarations: global elements not referenced as a child
  // of any type (falls back to all global elements if every one is
  // referenced).
  std::vector<int> RootElements() const;

 private:
  std::vector<ElementDecl> elements_;
  std::vector<ComplexType> types_;
  std::vector<int> global_elements_;
};

}  // namespace xprel::xsd

#endif  // XPREL_XSD_SCHEMA_H_
