#include "common/memory_budget.h"

#include <string>

namespace xprel {

namespace {

std::string OverCapMessage(const char* what, size_t bytes, size_t total,
                           size_t cap) {
  return std::string("memory budget exceeded at ") + what + ": " +
         std::to_string(bytes) + " more bytes would bring usage to " +
         std::to_string(total) + " of " + std::to_string(cap);
}

}  // namespace

Status MemoryBudget::Reserve(size_t bytes, const char* what) {
  size_t total = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (cap_ != 0 && total > cap_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(OverCapMessage(what, bytes, total, cap_));
  }
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (total > peak &&
         !peak_.compare_exchange_weak(peak, total, std::memory_order_relaxed)) {
  }
  if (parent_ != nullptr) {
    Status s = parent_->Reserve(bytes, what);
    if (!s.ok()) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return s;
    }
  }
  return Status::Ok();
}

void MemoryBudget::Release(size_t bytes) {
  size_t prev = used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (prev < bytes) {
    // Clamp: a mismatched release must not wrap the gauge into the exabytes.
    used_.store(0, std::memory_order_relaxed);
  }
  if (parent_ != nullptr) parent_->Release(bytes);
}

}  // namespace xprel
