#ifndef XPREL_COMMON_MEMORY_BUDGET_H_
#define XPREL_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>

#include "common/status.h"

namespace xprel {

// Atomic byte accounting with an optional hard cap and an optional parent.
// Reserve() either admits the bytes (recording a high-water mark) or
// returns Status::ResourceExhausted, so a query that would otherwise OOM
// the process fails cleanly instead. Budgets chain: a per-query budget
// parented to a service-wide budget enforces both caps with one call, and
// a reservation refused by the parent is rolled back locally.
//
// A cap of 0 means "no limit, account only" — the used()/peak() gauges
// still move, which is what the service's memory metrics read.
//
// Thread-safe for Reserve/Release/used/peak; set_cap() is a configuration
// call and must happen before the budget is shared.
class MemoryBudget {
 public:
  explicit MemoryBudget(size_t cap = 0, MemoryBudget* parent = nullptr)
      : cap_(cap), parent_(parent) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  // Admits `bytes` or returns ResourceExhausted naming `what` (a short
  // site label, e.g. "hash join build"). On success the bytes stay
  // reserved until Release().
  Status Reserve(size_t bytes, const char* what);

  // Returns previously reserved bytes. Releasing more than was reserved is
  // a caller bug; the counter clamps at zero rather than wrapping.
  void Release(size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t cap() const { return cap_; }
  void set_cap(size_t cap) { cap_ = cap; }

 private:
  size_t cap_;
  MemoryBudget* parent_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

}  // namespace xprel

#endif  // XPREL_COMMON_MEMORY_BUDGET_H_
