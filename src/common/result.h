#ifndef XPREL_COMMON_RESULT_H_
#define XPREL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xprel {

// Result<T> is either a value of type T or a non-OK Status — the library's
// substitute for exceptions (see DESIGN.md, Conventions). Typical use:
//
//   Result<XPathExpr> r = ParseXPath(text);
//   if (!r.ok()) return r.status();
//   Use(r.value());
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : rep_(std::move(value)) {}
  Result(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Status of a failed result; Status::Ok() when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Assigns the value of a Result expression to `lhs`, or propagates its error
// Status out of the enclosing function.
#define XPREL_ASSIGN_OR_RETURN(lhs, expr)          \
  do {                                             \
    auto _res = (expr);                            \
    if (!_res.ok()) return _res.status();          \
    lhs = std::move(_res).value();                 \
  } while (false)

}  // namespace xprel

#endif  // XPREL_COMMON_RESULT_H_
