#ifndef XPREL_COMMON_FAULT_INJECTION_H_
#define XPREL_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xprel::fault {

// Deterministic fault injection for error-path testing. Code sprinkles
// named points over its allocation/build/insert sites with
//
//   XPREL_RETURN_IF_ERROR(XPREL_FAULT_POINT("rel.hash_build"));
//
// In a normal build the macro expands to Status::Ok() and vanishes; when
// the build defines XPREL_FAULT_INJECTION (the `fault-injection` CMake
// preset), every crossing registers the point with the singleton injector
// and, if a test armed it, returns the injected error instead. Arming is
// trigger-on-Nth-hit counted from Arm(), fires exactly once, then
// disarms — so a sweep can walk the registry firing each point in turn
// and assert the query above it fails cleanly.
//
// The injector itself compiles in every build (it is tiny and lives off
// the hot path) so tests link unconditionally; only the points are
// conditional. FaultInjectionEnabled() tells a test whether arming can
// ever fire.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  // The next `nth`-th crossing of `point` (1 = the very next) returns
  // Status(code, ...). Re-arming an armed point resets its trigger.
  void Arm(const std::string& point, uint64_t nth = 1,
           StatusCode code = StatusCode::kResourceExhausted);
  void Disarm(const std::string& point);
  void DisarmAll();

  // Clears hit and fired counters (registration survives).
  void ResetCounts();
  // Forgets every point; a fresh record pass re-registers them.
  void Clear();

  // Every point crossed at least once since the last Clear(), sorted.
  std::vector<std::string> RegisteredPoints() const;
  uint64_t HitCount(const std::string& point) const;
  // Times the point returned an injected error since the last ResetCounts.
  uint64_t FiredCount(const std::string& point) const;

  // The macro's target: registers the crossing and fires if armed.
  Status OnPoint(const char* point);

 private:
  FaultInjector() = default;

  struct PointState {
    uint64_t hits = 0;
    uint64_t fired = 0;
    bool armed = false;
    uint64_t remaining = 0;
    StatusCode code = StatusCode::kResourceExhausted;
  };

  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
};

// True when XPREL_FAULT_POINT is live (the build defines
// XPREL_FAULT_INJECTION); tests skip the sweep otherwise.
bool FaultInjectionEnabled();

// The canonical registry of every XPREL_FAULT_POINT in the codebase,
// grouped by subsystem. RegisteredPoints() only knows points that were
// *crossed*; sweeps
// (hardening_test's FaultSweepTest, durability_test's crash sweep) walk
// this list instead so that a point nobody exercises still fails loudly
// (armed but never fired) rather than silently dropping out of coverage.
// Adding a fault point means adding it here — hardening_test cross-checks
// the two lists.
const std::vector<std::string>& AllKnownPoints();

// The subset of AllKnownPoints() starting with `prefix` (e.g. "wal." or
// "snap." for the durability crash sweep, "dml." for the mutation sweep).
std::vector<std::string> KnownPointsWithPrefix(std::string_view prefix);

inline Status CheckPoint(const char* point) {
  return FaultInjector::Instance().OnPoint(point);
}

}  // namespace xprel::fault

#ifdef XPREL_FAULT_INJECTION
#define XPREL_FAULT_POINT(point) ::xprel::fault::CheckPoint(point)
#else
#define XPREL_FAULT_POINT(point) ((void)(point), ::xprel::Status::Ok())
#endif

#endif  // XPREL_COMMON_FAULT_INJECTION_H_
