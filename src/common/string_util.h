#ifndef XPREL_COMMON_STRING_UTIL_H_
#define XPREL_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xprel {

// Splits `s` on `sep`, keeping empty pieces ("a//b" on '/' -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char sep);

// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Removes ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

// Strict integer / double parsing; nullopt on any trailing garbage.
std::optional<int64_t> ParseInt64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

// Lowercases ASCII letters only.
std::string AsciiToLower(std::string_view s);

// Formats a byte string as hex pairs, e.g. "\x01\xAB" -> "01ab". Used for
// printing Dewey positions in SQL text and debug output.
std::string HexEncode(std::string_view bytes);

}  // namespace xprel

#endif  // XPREL_COMMON_STRING_UTIL_H_
