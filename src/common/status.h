#ifndef XPREL_COMMON_STATUS_H_
#define XPREL_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace xprel {

// Error categories used across the library. Kept deliberately small: the
// code that produced the error carries the detail in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // XML / XSD / XPath / regex syntax error
  kNotFound,          // named entity (table, column, type) missing
  kUnsupported,       // feature outside the supported subset
  kInternal,          // invariant violation inside the library
  kCancelled,         // caller revoked the request mid-execution
  kDeadlineExceeded,  // per-query deadline expired before completion
  kResourceExhausted, // admission control rejected the request (queue full)
};

// Returns a stable human-readable name, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

// Exception-free error propagation, RocksDB-style. A Status is either OK or
// carries a code plus message. Functions that can fail return Status (or
// Result<T>, below) instead of throwing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "ParseError: unexpected token".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Evaluates an expression yielding Status; returns it from the enclosing
// function if not OK.
#define XPREL_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::xprel::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace xprel

#endif  // XPREL_COMMON_STATUS_H_
