#ifndef XPREL_COMMON_TASK_RUNNER_H_
#define XPREL_COMMON_TASK_RUNNER_H_

#include <functional>

namespace xprel {

// Minimal scheduling interface the executor uses to fan one query out over
// worker threads without depending on the serving layer (src/rel cannot link
// src/service). Implementations must be safe to call from any thread,
// including from inside a task the runner itself is executing — the morsel
// scheduler submits nested work from pooled threads.
//
// TrySubmit is allowed to refuse (return false) at any time; callers must
// treat a refusal as "run it yourself" (caller-runs fallback), never as an
// error. That contract is what makes nested submission deadlock-free: a
// saturated pool degrades to serial execution on the submitting thread.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  // Attempts to schedule `task` on another thread; returns false if the
  // runner cannot take it (saturated or shutting down). When it returns
  // true the task will eventually run exactly once.
  virtual bool TrySubmit(std::function<void()> task) = 0;

  // Number of threads the runner multiplexes onto — the natural fan-out for
  // "auto" parallelism.
  virtual int width() const = 0;
};

}  // namespace xprel

#endif  // XPREL_COMMON_TASK_RUNNER_H_
