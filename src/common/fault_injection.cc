#include "common/fault_injection.h"

namespace xprel::fault {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::Arm(const std::string& point, uint64_t nth,
                        StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& st = points_[point];
  st.armed = true;
  st.remaining = nth == 0 ? 1 : nth;
  st.code = code;
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : points_) st.armed = false;
}

void FaultInjector::ResetCounts() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, st] : points_) {
    st.hits = 0;
    st.fired = 0;
  }
}

void FaultInjector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

std::vector<std::string> FaultInjector::RegisteredPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, st] : points_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FiredCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fired;
}

Status FaultInjector::OnPoint(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& st = points_[point];
  ++st.hits;
  if (st.armed && --st.remaining == 0) {
    st.armed = false;
    ++st.fired;
    return Status(st.code, std::string("injected fault at ") + point);
  }
  return Status::Ok();
}

bool FaultInjectionEnabled() {
#ifdef XPREL_FAULT_INJECTION
  return true;
#else
  return false;
#endif
}

const std::vector<std::string>& AllKnownPoints() {
  static const std::vector<std::string> kPoints = {
      // engine / relational execution
      "accel.build",
      "engine.plan_cache_insert",
      "engine.translate",
      "rel.distinct",
      "rel.emit_row",
      "rel.exists_memo_insert",
      "rel.hash_build",
      "rel.merge_collect",
      "rel.plan_regex",
      "rel.plan_select",
      "rel.semijoin_build",
      "rex.compile",
      "shred.edge_load",
      "shred.schema_load",
      "xml.parse",
      "xpath.parse",
      // incremental DML
      "dml.apply",
      "dml.edge_delete",
      "dml.edge_dewey",
      "dml.edge_insert",
      "dml.edge_text",
      "dml.ppf_delete",
      "dml.ppf_dewey",
      "dml.ppf_insert",
      "dml.ppf_text",
      // durability: WAL + snapshots
      "snap.load",
      "snap.rename",
      "snap.sync",
      "snap.write",
      "wal.append",
      "wal.open",
      "wal.sync",
  };
  return kPoints;
}

std::vector<std::string> KnownPointsWithPrefix(std::string_view prefix) {
  std::vector<std::string> out;
  for (const std::string& point : AllKnownPoints()) {
    if (point.size() >= prefix.size() &&
        std::string_view(point).substr(0, prefix.size()) == prefix) {
      out.push_back(point);
    }
  }
  return out;
}

}  // namespace xprel::fault
