#include "common/trace.h"

#include <cstdio>

namespace xprel {

int TraceContext::BeginSpan(const char* name, int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) return -1;
  Span s;
  s.name = name;
  s.parent = parent >= 0 && static_cast<size_t>(parent) < spans_.size()
                 ? parent
                 : -1;
  s.start_us = TraceClock::NowUs();
  s.end_us = 0;
  spans_.push_back(std::move(s));
  return static_cast<int>(spans_.size() - 1);
}

void TraceContext::EndSpan(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  Span& s = spans_[static_cast<size_t>(id)];
  if (s.end_us == 0) s.end_us = TraceClock::NowUs();
}

void TraceContext::Annotate(int id, const std::string& note) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return;
  Span& s = spans_[static_cast<size_t>(id)];
  if (!s.note.empty()) s.note += ", ";
  s.note += note;
}

size_t TraceContext::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceContext::Span> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string TraceContext::Render() const {
  std::vector<Span> snap = Snapshot();
  // Depth of each span = depth(parent) + 1; parents always precede children
  // (append-only tree), so one forward pass suffices.
  std::vector<int> depth(snap.size(), 0);
  for (size_t i = 0; i < snap.size(); ++i) {
    depth[i] = snap[i].parent >= 0 ? depth[static_cast<size_t>(snap[i].parent)] + 1 : 0;
  }
  char line[160];
  std::snprintf(line, sizeof(line), "trace %llu\n",
                static_cast<unsigned long long>(trace_id_));
  std::string out = line;
  // Children are indented under their parent; render in recorded order,
  // which is open order — close order does not matter for the tree shape.
  // To keep children grouped under parents we emit spans in DFS order.
  std::vector<std::vector<size_t>> kids(snap.size());
  std::vector<size_t> roots;
  for (size_t i = 0; i < snap.size(); ++i) {
    if (snap[i].parent >= 0) {
      kids[static_cast<size_t>(snap[i].parent)].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  std::vector<std::pair<size_t, int>> stack;  // (span, depth), reversed push
  for (size_t r = roots.size(); r-- > 0;) stack.push_back({roots[r], 0});
  while (!stack.empty()) {
    auto [i, d] = stack.back();
    stack.pop_back();
    const Span& s = snap[i];
    out.append(static_cast<size_t>(d) * 2, ' ');
    out += s.name;
    if (s.end_us >= s.start_us && s.end_us != 0) {
      std::snprintf(line, sizeof(line), " %lluµs",
                    static_cast<unsigned long long>(s.end_us - s.start_us));
      out += line;
    } else {
      out += " ...";
    }
    if (!s.note.empty()) {
      out += " [";
      out += s.note;
      out += "]";
    }
    out += "\n";
    for (size_t k = kids[i].size(); k-- > 0;) stack.push_back({kids[i][k], d + 1});
  }
  return out;
}

}  // namespace xprel
