#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace xprel {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string HexEncode(std::string_view bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

}  // namespace xprel
