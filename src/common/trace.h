#ifndef XPREL_COMMON_TRACE_H_
#define XPREL_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace xprel {

// The sampling clock behind all observability timings. At XPREL_TRACE_LEVEL
// >= 1 (the build default) NowUs() reads the steady clock; at level 0 it
// compiles down to `return 0`, so a binary built with -DXPREL_TRACE_LEVEL=0
// pays literally nothing for timing even when a trace sink is attached.
// Callers must treat a 0 return as "clock disabled", never as an epoch.
//
// The executor only reads the clock at batch/phase boundaries (one read per
// phase switch, never per row), which is what keeps traced execution within
// the ≤5% overhead budget enforced by `check_regression.py --trace-overhead`.
struct TraceClock {
#if XPREL_TRACE_LEVEL > 0
  static constexpr bool kEnabled = true;
  static uint64_t NowUs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
#else
  static constexpr bool kEnabled = false;
  static uint64_t NowUs() { return 0; }
#endif
};

// A per-query span tree: named intervals (queue wait, plan-cache lookup,
// build, execute, per-morsel work) hung off a query-assigned trace id. The
// context travels admission → queue → execution → morsel workers on
// rel::ExecControl, so spans may be opened from several threads at once —
// all mutation is behind one mutex, which is fine because spans open at
// query/morsel granularity, not per row or per batch.
//
// Span names must be string literals (the context stores the pointer).
// The tree is bounded: once kMaxSpans spans exist, BeginSpan drops the
// request and returns -1 (EndSpan/Annotate on -1 are no-ops), so a
// pathological query cannot grow a trace without bound.
class TraceContext {
 public:
  static constexpr size_t kMaxSpans = 256;

  struct Span {
    const char* name;       // static string
    int parent;             // index into spans(), -1 for roots
    uint64_t start_us;      // TraceClock::NowUs() at open (0 if clock off)
    uint64_t end_us;        // 0 while open
    std::string note;       // free-form annotation ("cache=hit", counts...)
  };

  explicit TraceContext(uint64_t trace_id) : trace_id_(trace_id) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  uint64_t trace_id() const { return trace_id_; }

  // Opens a span under `parent` (-1 = root) and returns its id, or -1 when
  // the tree is full. Thread-safe.
  int BeginSpan(const char* name, int parent = -1);

  // Closes span `id`; no-op for -1 or already-closed spans. Thread-safe.
  void EndSpan(int id);

  // Appends to span `id`'s note (spans keep one note line). Thread-safe.
  void Annotate(int id, const std::string& note);

  // Number of spans recorded so far.
  size_t span_count() const;

  // Snapshot of the span tree (indices are stable: spans are append-only).
  std::vector<Span> Snapshot() const;

  // Renders the tree as indented text, one span per line:
  //   "queue 1234µs" / "  execute 987µs [cache=miss]". Open spans render
  //   with "..." in place of a duration.
  std::string Render() const;

 private:
  const uint64_t trace_id_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

// RAII helper: opens a span on construction (if `ctx` is non-null) and
// closes it on destruction. Safe to construct with a null context.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, const char* name, int parent = -1)
      : ctx_(ctx), id_(ctx != nullptr ? ctx->BeginSpan(name, parent) : -1) {}
  ~ScopedSpan() {
    if (ctx_ != nullptr) ctx_->EndSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int id() const { return id_; }
  void Annotate(const std::string& note) {
    if (ctx_ != nullptr) ctx_->Annotate(id_, note);
  }

 private:
  TraceContext* ctx_;
  int id_;
};

}  // namespace xprel

#endif  // XPREL_COMMON_TRACE_H_
