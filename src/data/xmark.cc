#include "data/xmark.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "data/rng.h"

namespace xprel::data {

namespace {

const char* kWords[] = {
    "quality",  "vintage", "premium", "classic",  "rare",    "limited",
    "handmade", "antique", "modern",  "portable", "durable", "compact",
    "elegant",  "sturdy",  "golden",  "silver",   "crimson", "emerald",
    "walnut",   "marble",  "velvet",  "ceramic",  "brass",   "ivory",
};
constexpr size_t kWordCount = sizeof(kWords) / sizeof(kWords[0]);

const char* kCountries[] = {"United States", "Germany", "Greece",
                            "Japan",         "Brazil",  "Canada"};

class XMarkBuilder {
 public:
  explicit XMarkBuilder(const XMarkOptions& options)
      : rng_(options.seed),
        items_(std::max<int>(6, static_cast<int>(21750 * options.scale))),
        persons_(std::max<int>(4, static_cast<int>(25500 * options.scale))),
        open_auctions_(
            std::max<int>(2, static_cast<int>(12000 * options.scale))),
        closed_auctions_(
            std::max<int>(2, static_cast<int>(9750 * options.scale))),
        categories_(std::max<int>(2, static_cast<int>(1000 * options.scale))) {}

  xml::Document Build() {
    b_.StartElement("site");
    Regions();
    Categories();
    CatGraph();
    People();
    OpenAuctions();
    ClosedAuctions();
    b_.EndElement();
    return std::move(b_).Finish().value();
  }

 private:
  std::string Word() { return kWords[rng_.Below(kWordCount)]; }

  std::string Sentence(int words) {
    std::string out;
    for (int i = 0; i < words; ++i) {
      if (i > 0) out += " ";
      out += Word();
    }
    return out;
  }

  // A `text` element: mixed content with some keyword / bold / emph
  // children. `keywords` forces the exact keyword count when >= 0.
  void TextElement(int keywords) {
    b_.StartElement("text");
    b_.AddText(Sentence(3 + static_cast<int>(rng_.Below(5))) + " ");
    int n = keywords >= 0 ? keywords
                          : static_cast<int>(rng_.Below(3));  // 0..2
    for (int i = 0; i < n; ++i) {
      if (rng_.Chance(1, 4)) {
        // Keyword nested in markup.
        b_.StartElement(rng_.Chance(1, 2) ? "bold" : "emph");
        b_.AddText(Word() + " ");
        b_.AddTextElement("keyword", Word());
        b_.EndElement();
      } else {
        b_.AddTextElement("keyword", Word());
      }
      b_.AddText(" " + Word());
    }
    b_.EndElement();
  }

  // description -> text | parlist (recursion through listitem).
  void Description(int depth, int forced_keywords = -1) {
    b_.StartElement("description");
    if (forced_keywords >= 0) {
      TextElement(forced_keywords);
    } else if (depth < 3 && rng_.Chance(3, 10)) {
      Parlist(depth + 1);
    } else {
      TextElement(-1);
    }
    b_.EndElement();
  }

  void Parlist(int depth) {
    b_.StartElement("parlist");
    int items = 1 + static_cast<int>(rng_.Below(3));
    for (int i = 0; i < items; ++i) {
      b_.StartElement("listitem");
      if (depth < 3 && rng_.Chance(1, 5)) {
        Parlist(depth + 1);
      } else {
        TextElement(-1);
      }
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Mail() {
    b_.StartElement("mail");
    b_.AddTextElement("from", "Person " + std::to_string(rng_.Below(
                                  static_cast<uint64_t>(persons_))));
    b_.AddTextElement("to", "Person " + std::to_string(rng_.Below(
                                static_cast<uint64_t>(persons_))));
    b_.AddTextElement("date", Date());
    TextElement(-1);
    b_.EndElement();
  }

  std::string Date() {
    return std::to_string(rng_.Range(1998, 2005)) + "-" +
           std::to_string(rng_.Range(1, 12)) + "-" +
           std::to_string(rng_.Range(1, 28));
  }

  void Item(int id) {
    b_.StartElement("item");
    b_.AddAttribute("id", "item" + std::to_string(id));
    if (rng_.Chance(1, 10)) b_.AddAttribute("featured", "yes");
    b_.AddTextElement("location", kCountries[rng_.Below(6)]);
    b_.AddTextElement("quantity", std::to_string(rng_.Range(1, 10)));
    b_.AddTextElement("name", Word() + " " + Word());
    b_.AddTextElement("payment", "Creditcard");
    // item0 gets exactly one keyword in its description (Q21).
    Description(0, id == 0 ? 1 : -1);
    b_.AddTextElement("shipping", "Will ship internationally");
    int cats = static_cast<int>(rng_.Below(3));
    for (int c = 0; c < cats; ++c) {
      b_.StartElement("incategory");
      b_.AddAttribute("category", "category" + std::to_string(rng_.Below(
                                      static_cast<uint64_t>(categories_))));
      b_.EndElement();
    }
    if (rng_.Chance(2, 5)) {
      b_.StartElement("mailbox");
      int mails = 1 + static_cast<int>(rng_.Below(2));
      for (int m = 0; m < mails; ++m) Mail();
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Regions() {
    // Region shares: namerica gets 40% (Q5 expects namerica+samerica to
    // hold about half the items), the rest split the remainder.
    struct RegionShare {
      const char* name;
      int share;  // tenths
    };
    const RegionShare regions[] = {{"africa", 1},   {"asia", 2},
                                   {"australia", 1}, {"europe", 1},
                                   {"namerica", 4},  {"samerica", 1}};
    b_.StartElement("regions");
    int next_id = 0;
    for (const RegionShare& r : regions) {
      b_.StartElement(r.name);
      int count = items_ * r.share / 10;
      if (std::string(r.name) == "samerica") {
        count = items_ - next_id;  // the remainder, so totals are exact
      }
      // "item0" must be first in document order (Q10): africa is emitted
      // first and ids ascend globally.
      for (int i = 0; i < count; ++i) Item(next_id++);
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Categories() {
    b_.StartElement("categories");
    for (int i = 0; i < categories_; ++i) {
      b_.StartElement("category");
      b_.AddAttribute("id", "category" + std::to_string(i));
      b_.AddTextElement("name", Word() + " goods");
      Description(1);
      b_.EndElement();
    }
    b_.EndElement();
  }

  void CatGraph() {
    b_.StartElement("catgraph");
    for (int i = 0; i < categories_ * 2; ++i) {
      b_.StartElement("edge");
      b_.AddAttribute("from", "category" + std::to_string(rng_.Below(
                                  static_cast<uint64_t>(categories_))));
      b_.AddAttribute("to", "category" + std::to_string(rng_.Below(
                                static_cast<uint64_t>(categories_))));
      b_.EndElement();
    }
    b_.EndElement();
  }

  void People() {
    b_.StartElement("people");
    for (int i = 0; i < persons_; ++i) {
      b_.StartElement("person");
      b_.AddAttribute("id", "person" + std::to_string(i));
      b_.AddTextElement("name", "Person " + std::to_string(i));
      b_.AddTextElement("emailaddress",
                        "mailto:person" + std::to_string(i) + "@example.com");
      if (rng_.Chance(1, 2)) {
        b_.AddTextElement("phone", "+1 (" + std::to_string(rng_.Range(100, 999)) +
                                       ") " + std::to_string(rng_.Range(1000000, 9999999)));
      }
      if (rng_.Chance(3, 5)) {
        b_.StartElement("address");
        b_.AddTextElement("street", std::to_string(rng_.Range(1, 99)) + " " +
                                        Word() + " St");
        b_.AddTextElement("city", Word());
        b_.AddTextElement("country", kCountries[rng_.Below(6)]);
        b_.AddTextElement("zipcode", std::to_string(rng_.Range(10000, 99999)));
        b_.EndElement();
      }
      if (rng_.Chance(2, 5)) {
        b_.AddTextElement("homepage",
                          "http://example.com/~person" + std::to_string(i));
      }
      if (rng_.Chance(3, 10)) {
        b_.AddTextElement("creditcard",
                          std::to_string(rng_.Range(1000, 9999)) + " " +
                              std::to_string(rng_.Range(1000, 9999)));
      }
      if (rng_.Chance(4, 5)) {
        b_.StartElement("profile");
        b_.AddAttribute("income", std::to_string(rng_.Range(9000, 200000)));
        int interests = static_cast<int>(rng_.Below(3));
        for (int k = 0; k < interests; ++k) {
          b_.StartElement("interest");
          b_.AddAttribute("category",
                          "category" + std::to_string(rng_.Below(
                              static_cast<uint64_t>(categories_))));
          b_.EndElement();
        }
        if (rng_.Chance(1, 2)) b_.AddTextElement("education", "Graduate School");
        if (rng_.Chance(1, 2)) b_.AddTextElement("gender", rng_.Chance(1, 2) ? "male" : "female");
        b_.AddTextElement("business", rng_.Chance(1, 2) ? "Yes" : "No");
        if (rng_.Chance(1, 2)) {
          b_.AddTextElement("age", std::to_string(rng_.Range(18, 80)));
        }
        b_.EndElement();
      }
      if (rng_.Chance(1, 2)) {
        b_.StartElement("watches");
        int watches = 1 + static_cast<int>(rng_.Below(3));
        for (int w = 0; w < watches; ++w) {
          b_.StartElement("watch");
          b_.AddAttribute("open_auction",
                          "open_auction" + std::to_string(rng_.Below(
                              static_cast<uint64_t>(open_auctions_))));
          b_.EndElement();
        }
        b_.EndElement();
      }
      b_.EndElement();
    }
    b_.EndElement();
  }

  void Bidder(const std::string& person, const std::string& date) {
    b_.StartElement("bidder");
    b_.AddTextElement("date", date);
    b_.AddTextElement("time", std::to_string(rng_.Range(0, 23)) + ":" +
                                  std::to_string(rng_.Range(10, 59)));
    b_.StartElement("personref");
    b_.AddAttribute("person", person);
    b_.EndElement();
    b_.AddTextElement("increase", std::to_string(rng_.Range(1, 50)) + ".00");
    b_.EndElement();
  }

  std::string RandomPerson() {
    // persons 0 and 1 are reserved for the Q11 fixture.
    return "person" +
           std::to_string(2 + rng_.Below(static_cast<uint64_t>(
                                  std::max(1, persons_ - 2))));
  }

  void OpenAuctions() {
    b_.StartElement("open_auctions");
    for (int i = 0; i < open_auctions_; ++i) {
      b_.StartElement("open_auction");
      b_.AddAttribute("id", "open_auction" + std::to_string(i));
      b_.AddTextElement("initial", std::to_string(rng_.Range(1, 200)) + ".00");
      if (rng_.Chance(1, 2)) {
        b_.AddTextElement("reserve", std::to_string(rng_.Range(1, 300)) + ".00");
      }
      std::string interval_start = Date();
      // Q-A fixture: occasionally a bidder's date equals interval/start.
      bool join_match = rng_.Chance(1, 150);
      // Q9 fixture: open_auction0 has exactly four bidders. Auctions 1 and
      // 2 host the Q11 person0/person1 bids, so they need at least one.
      int bidders = i == 0 ? 4 : static_cast<int>(rng_.Below(4));
      if ((i == 1 || i == 2) && bidders == 0) bidders = 1;
      for (int k = 0; k < bidders; ++k) {
        std::string person = RandomPerson();
        // Q11 fixture: person0 bids once in auction 1, person1 bids once in
        // auction 2 (person0's bid precedes person1's in document order).
        if (i == 1 && k == 0) person = "person0";
        if (i == 2 && k == 0) person = "person1";
        std::string date = join_match && k == 0 ? interval_start : Date();
        Bidder(person, date);
      }
      b_.AddTextElement("current", std::to_string(rng_.Range(1, 500)) + ".00");
      if (rng_.Chance(1, 3)) b_.AddTextElement("privacy", "Yes");
      b_.StartElement("itemref");
      b_.AddAttribute("item", "item" + std::to_string(rng_.Below(
                                  static_cast<uint64_t>(items_))));
      b_.EndElement();
      b_.StartElement("seller");
      b_.AddAttribute("person", RandomPerson());
      b_.EndElement();
      b_.StartElement("annotation");
      if (rng_.Chance(1, 2)) {
        b_.StartElement("author");
        b_.AddAttribute("person", RandomPerson());
        b_.EndElement();
      }
      Description(1);
      if (rng_.Chance(1, 2)) b_.AddTextElement("happiness", std::to_string(rng_.Range(1, 10)));
      b_.EndElement();
      b_.AddTextElement("quantity", std::to_string(rng_.Range(1, 5)));
      b_.AddTextElement("type", rng_.Chance(1, 2) ? "Regular" : "Featured");
      b_.StartElement("interval");
      b_.AddTextElement("start", interval_start);
      b_.AddTextElement("end", Date());
      b_.EndElement();
      b_.EndElement();
    }
    b_.EndElement();
  }

  void ClosedAuctions() {
    b_.StartElement("closed_auctions");
    for (int i = 0; i < closed_auctions_; ++i) {
      b_.StartElement("closed_auction");
      b_.StartElement("seller");
      b_.AddAttribute("person", RandomPerson());
      b_.EndElement();
      b_.StartElement("buyer");
      b_.AddAttribute("person", RandomPerson());
      b_.EndElement();
      b_.StartElement("itemref");
      b_.AddAttribute("item", "item" + std::to_string(rng_.Below(
                                  static_cast<uint64_t>(items_))));
      b_.EndElement();
      b_.AddTextElement("price", std::to_string(rng_.Range(1, 500)) + ".00");
      b_.AddTextElement("date", Date());
      b_.AddTextElement("quantity", std::to_string(rng_.Range(1, 5)));
      b_.AddTextElement("type", rng_.Chance(1, 2) ? "Regular" : "Featured");
      b_.StartElement("annotation");
      if (rng_.Chance(1, 2)) {
        b_.StartElement("author");
        b_.AddAttribute("person", RandomPerson());
        b_.EndElement();
      }
      Description(1);
      if (rng_.Chance(1, 2)) b_.AddTextElement("happiness", std::to_string(rng_.Range(1, 10)));
      b_.EndElement();
      b_.EndElement();
    }
    b_.EndElement();
  }

  Rng rng_;
  int items_;
  int persons_;
  int open_auctions_;
  int closed_auctions_;
  int categories_;
  xml::Builder b_;
};

}  // namespace

xml::Document GenerateXMark(const XMarkOptions& options) {
  XMarkBuilder builder(options);
  return builder.Build();
}

const char* XMarkXsd() {
  return R"XSD(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="site">
    <xs:complexType><xs:sequence>
      <xs:element ref="regions"/><xs:element ref="categories"/>
      <xs:element ref="catgraph"/><xs:element ref="people"/>
      <xs:element ref="open_auctions"/><xs:element ref="closed_auctions"/>
    </xs:sequence></xs:complexType>
  </xs:element>

  <xs:element name="regions">
    <xs:complexType><xs:sequence>
      <xs:element name="africa"><xs:complexType><xs:sequence><xs:element ref="item" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
      <xs:element name="asia"><xs:complexType><xs:sequence><xs:element ref="item" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
      <xs:element name="australia"><xs:complexType><xs:sequence><xs:element ref="item" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
      <xs:element name="europe"><xs:complexType><xs:sequence><xs:element ref="item" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
      <xs:element name="namerica"><xs:complexType><xs:sequence><xs:element ref="item" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
      <xs:element name="samerica"><xs:complexType><xs:sequence><xs:element ref="item" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>

  <xs:element name="item">
    <xs:complexType><xs:sequence>
      <xs:element ref="location"/><xs:element ref="quantity"/>
      <xs:element ref="name"/><xs:element ref="payment"/>
      <xs:element ref="description"/><xs:element ref="shipping"/>
      <xs:element ref="incategory" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="mailbox" minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="id"/><xs:attribute name="featured"/>
    </xs:complexType>
  </xs:element>

  <xs:element name="location" type="xs:string"/>
  <xs:element name="quantity" type="xs:string"/>
  <xs:element name="name" type="xs:string"/>
  <xs:element name="payment" type="xs:string"/>
  <xs:element name="shipping" type="xs:string"/>
  <xs:element name="incategory"><xs:complexType><xs:attribute name="category"/></xs:complexType></xs:element>
  <xs:element name="mailbox"><xs:complexType><xs:sequence><xs:element ref="mail" minOccurs="0" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
  <xs:element name="mail">
    <xs:complexType><xs:sequence>
      <xs:element ref="from"/><xs:element ref="to"/>
      <xs:element ref="date"/><xs:element ref="text"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="from" type="xs:string"/>
  <xs:element name="to" type="xs:string"/>
  <xs:element name="date" type="xs:string"/>

  <xs:element name="description">
    <xs:complexType><xs:choice>
      <xs:element ref="text"/><xs:element ref="parlist"/>
    </xs:choice></xs:complexType>
  </xs:element>
  <xs:element name="text">
    <xs:complexType mixed="true"><xs:sequence>
      <xs:element ref="keyword" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="bold" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="emph" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="keyword" type="xs:string"/>
  <xs:element name="bold"><xs:complexType mixed="true"><xs:sequence><xs:element ref="keyword" minOccurs="0" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
  <xs:element name="emph"><xs:complexType mixed="true"><xs:sequence><xs:element ref="keyword" minOccurs="0" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
  <xs:element name="parlist"><xs:complexType><xs:sequence><xs:element ref="listitem" minOccurs="0" maxOccurs="unbounded"/></xs:sequence></xs:complexType></xs:element>
  <xs:element name="listitem">
    <xs:complexType><xs:choice>
      <xs:element ref="text"/><xs:element ref="parlist"/>
    </xs:choice></xs:complexType>
  </xs:element>

  <xs:element name="categories">
    <xs:complexType><xs:sequence><xs:element ref="category" maxOccurs="unbounded"/></xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="category">
    <xs:complexType><xs:sequence>
      <xs:element ref="name"/><xs:element ref="description"/>
    </xs:sequence><xs:attribute name="id"/></xs:complexType>
  </xs:element>
  <xs:element name="catgraph">
    <xs:complexType><xs:sequence><xs:element name="edge" minOccurs="0" maxOccurs="unbounded"><xs:complexType><xs:attribute name="from"/><xs:attribute name="to"/></xs:complexType></xs:element></xs:sequence></xs:complexType>
  </xs:element>

  <xs:element name="people">
    <xs:complexType><xs:sequence><xs:element ref="person" minOccurs="0" maxOccurs="unbounded"/></xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="person">
    <xs:complexType><xs:sequence>
      <xs:element ref="name"/><xs:element ref="emailaddress"/>
      <xs:element ref="phone" minOccurs="0"/>
      <xs:element ref="address" minOccurs="0"/>
      <xs:element ref="homepage" minOccurs="0"/>
      <xs:element ref="creditcard" minOccurs="0"/>
      <xs:element ref="profile" minOccurs="0"/>
      <xs:element ref="watches" minOccurs="0"/>
    </xs:sequence><xs:attribute name="id"/></xs:complexType>
  </xs:element>
  <xs:element name="emailaddress" type="xs:string"/>
  <xs:element name="phone" type="xs:string"/>
  <xs:element name="homepage" type="xs:string"/>
  <xs:element name="creditcard" type="xs:string"/>
  <xs:element name="address">
    <xs:complexType><xs:sequence>
      <xs:element name="street" type="xs:string"/><xs:element name="city" type="xs:string"/>
      <xs:element name="country" type="xs:string"/><xs:element name="zipcode" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="profile">
    <xs:complexType><xs:sequence>
      <xs:element name="interest" minOccurs="0" maxOccurs="unbounded"><xs:complexType><xs:attribute name="category"/></xs:complexType></xs:element>
      <xs:element name="education" type="xs:string" minOccurs="0"/>
      <xs:element name="gender" type="xs:string" minOccurs="0"/>
      <xs:element name="business" type="xs:string"/>
      <xs:element name="age" type="xs:string" minOccurs="0"/>
    </xs:sequence><xs:attribute name="income"/></xs:complexType>
  </xs:element>
  <xs:element name="watches">
    <xs:complexType><xs:sequence><xs:element name="watch" minOccurs="0" maxOccurs="unbounded"><xs:complexType><xs:attribute name="open_auction"/></xs:complexType></xs:element></xs:sequence></xs:complexType>
  </xs:element>

  <xs:element name="open_auctions">
    <xs:complexType><xs:sequence><xs:element ref="open_auction" minOccurs="0" maxOccurs="unbounded"/></xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="open_auction">
    <xs:complexType><xs:sequence>
      <xs:element name="initial" type="xs:string"/>
      <xs:element name="reserve" type="xs:string" minOccurs="0"/>
      <xs:element ref="bidder" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element name="current" type="xs:string"/>
      <xs:element name="privacy" type="xs:string" minOccurs="0"/>
      <xs:element ref="itemref"/>
      <xs:element ref="seller"/>
      <xs:element ref="annotation"/>
      <xs:element ref="quantity"/>
      <xs:element name="type" type="xs:string"/>
      <xs:element name="interval"><xs:complexType><xs:sequence>
        <xs:element name="start" type="xs:string"/><xs:element name="end" type="xs:string"/>
      </xs:sequence></xs:complexType></xs:element>
    </xs:sequence><xs:attribute name="id"/></xs:complexType>
  </xs:element>
  <xs:element name="bidder">
    <xs:complexType><xs:sequence>
      <xs:element ref="date"/><xs:element name="time" type="xs:string"/>
      <xs:element name="personref"><xs:complexType><xs:attribute name="person"/></xs:complexType></xs:element>
      <xs:element name="increase" type="xs:string"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="itemref"><xs:complexType><xs:attribute name="item"/></xs:complexType></xs:element>
  <xs:element name="seller"><xs:complexType><xs:attribute name="person"/></xs:complexType></xs:element>
  <xs:element name="annotation">
    <xs:complexType><xs:sequence>
      <xs:element name="author" minOccurs="0"><xs:complexType><xs:attribute name="person"/></xs:complexType></xs:element>
      <xs:element ref="description" minOccurs="0"/>
      <xs:element name="happiness" type="xs:string" minOccurs="0"/>
    </xs:sequence></xs:complexType>
  </xs:element>

  <xs:element name="closed_auctions">
    <xs:complexType><xs:sequence><xs:element ref="closed_auction" minOccurs="0" maxOccurs="unbounded"/></xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="closed_auction">
    <xs:complexType><xs:sequence>
      <xs:element ref="seller"/>
      <xs:element name="buyer"><xs:complexType><xs:attribute name="person"/></xs:complexType></xs:element>
      <xs:element ref="itemref"/>
      <xs:element name="price" type="xs:string"/>
      <xs:element ref="date"/>
      <xs:element ref="quantity"/>
      <xs:element name="type" type="xs:string"/>
      <xs:element ref="annotation"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>
)XSD";
}

}  // namespace xprel::data
