#ifndef XPREL_DATA_XMARK_H_
#define XPREL_DATA_XMARK_H_

#include <cstdint>

#include "xml/document.h"

namespace xprel::data {

// Deterministic XMark-like auction-site generator (the paper's synthetic
// workload; see DESIGN.md for the substitution note). Entity counts follow
// the real XMark ratios — at scale 1.0: 21750 items, 25500 persons, 12000
// open auctions, 9750 closed auctions, 1000 categories — so the paper's
// 12 MB document corresponds to scale 0.1.
//
// The generator plants the fixtures the XPathMark queries probe:
//   * item ids "item0", "item1", ... with "item0" first in document order
//     (Q10, Q21), ~10% @featured='yes' (Q12);
//   * "open_auction0" carries four bidders (Q9);
//   * person ids "person0"/"person1" each place exactly one bid, person0's
//     before person1's (Q11);
//   * item0's description contains exactly one keyword (Q21);
//   * a small fraction of open auctions have a bidder date equal to their
//     interval start (Q-A's join clause);
//   * descriptions recurse through parlist/listitem (Q2, Q4, Q6), mailboxes
//     carry keyword-bearing mails (Q7).
struct XMarkOptions {
  double scale = 0.1;
  uint64_t seed = 42;
};

xml::Document GenerateXMark(const XMarkOptions& options);

// The XML Schema the generated documents conform to.
const char* XMarkXsd();

}  // namespace xprel::data

#endif  // XPREL_DATA_XMARK_H_
