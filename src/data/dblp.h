#ifndef XPREL_DATA_DBLP_H_
#define XPREL_DATA_DBLP_H_

#include <cstdint>

#include "xml/document.h"

namespace xprel::data {

// Deterministic DBLP-like bibliography generator (stand-in for the paper's
// 130 MB DBLP dump; see DESIGN.md). Record mix mirrors DBLP:
// inproceedings / article / book, each with author+, title, year, venue.
// Titles occasionally contain sup/sub/i markup (recursive sub <-> sup
// nesting), which is what QD2-QD4 probe. Fixtures:
//   * the author 'Harold G. Longbotham' appears on exactly two
//     inproceedings, before the title element (QD1);
//   * book authors are drawn from the same pool as inproceedings authors,
//     so the QD5 value join selects a large fraction of titles;
//   * at least one <i> nested as sub/<something>/i under an article (QD4).
struct DblpOptions {
  int inproceedings = 4000;
  int articles = 2000;
  int books = 120;
  uint64_t seed = 7;
};

xml::Document GenerateDblp(const DblpOptions& options);

// The XML Schema the generated bibliographies conform to.
const char* DblpXsd();

}  // namespace xprel::data

#endif  // XPREL_DATA_DBLP_H_
