#ifndef XPREL_DATA_RNG_H_
#define XPREL_DATA_RNG_H_

#include <cstdint>

namespace xprel::data {

// SplitMix64: tiny deterministic PRNG so generated datasets are stable
// across platforms and standard-library versions (std::mt19937
// distributions are not portable).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace xprel::data

#endif  // XPREL_DATA_RNG_H_
