#include "data/dblp.h"

#include <string>
#include <vector>

#include "data/rng.h"

namespace xprel::data {

namespace {

const char* kTopics[] = {
    "Query Optimization", "Index Structures",   "Stream Processing",
    "XML Shredding",      "Join Algorithms",    "Concurrency Control",
    "Data Integration",   "Schema Mapping",     "View Maintenance",
    "Access Methods",     "Buffer Management",  "Cost Models",
};
constexpr size_t kTopicCount = sizeof(kTopics) / sizeof(kTopics[0]);

const char* kVenues[] = {"VLDB", "SIGMOD", "ICDE", "EDBT", "CIKM", "WIDM"};
const char* kJournals[] = {"TODS", "VLDB Journal", "TKDE", "Inf. Syst."};

class DblpBuilder {
 public:
  explicit DblpBuilder(const DblpOptions& options)
      : options_(options), rng_(options.seed) {
    int pool = std::max(16, options.inproceedings / 4);
    for (int i = 0; i < pool; ++i) {
      authors_.push_back("Author " + Family(i));
    }
    // Book authors come from the head of the pool so the QD5 join hits a
    // sizeable fraction of inproceedings.
    book_pool_ = std::max(4, pool * 15 / 100);
  }

  xml::Document Build() {
    b_.StartElement("dblp");
    for (int i = 0; i < options_.inproceedings; ++i) Inproceedings(i);
    for (int i = 0; i < options_.articles; ++i) Article(i);
    for (int i = 0; i < options_.books; ++i) Book(i);
    b_.EndElement();
    return std::move(b_).Finish().value();
  }

 private:
  static std::string Family(int i) {
    static const char* kFamilies[] = {"Smith",  "Mueller", "Tanaka",
                                      "Garcia", "Papadias", "Kim",
                                      "Ivanov", "Rossi",    "Chen",
                                      "Dubois"};
    return std::string(kFamilies[i % 10]) + std::to_string(i / 10);
  }

  const std::string& RandomAuthor() {
    return authors_[rng_.Below(authors_.size())];
  }
  const std::string& RandomBookAuthor() {
    return authors_[rng_.Below(static_cast<uint64_t>(book_pool_))];
  }

  std::string Topic() { return kTopics[rng_.Below(kTopicCount)]; }

  // Emits a title element; markup (sup/sub/i) with the given shape:
  //   0 = plain, 1 = title/sup, 2 = title/sub/sup/i (the QD4 shape),
  //   3 = title/sup/sub nesting.
  void Title(int shape) {
    b_.StartElement("title");
    b_.AddText(Topic() + " ");
    switch (shape) {
      case 1:
        b_.AddTextElement("sup", std::to_string(rng_.Range(2, 9)));
        break;
      case 2:
        b_.StartElement("sub");
        b_.AddText("k");
        b_.StartElement("sup");
        b_.AddText("n");
        b_.AddTextElement("i", "j");
        b_.EndElement();
        b_.EndElement();
        break;
      case 3:
        b_.StartElement("sup");
        b_.AddText("2");
        b_.AddTextElement("sub", "i");
        b_.EndElement();
        break;
      default:
        b_.AddText("Revisited");
        break;
    }
    b_.EndElement();
  }

  int RandomTitleShape() {
    // ~8% of titles carry markup.
    uint64_t r = rng_.Below(100);
    if (r < 4) return 1;
    if (r < 6) return 3;
    return 0;
  }

  void Inproceedings(int i) {
    b_.StartElement("inproceedings");
    b_.AddAttribute("key", "conf/x/" + std::to_string(i));
    // QD1 fixture: 'Harold G. Longbotham' authors exactly two papers.
    if (i == 10 || i == 20) {
      b_.AddTextElement("author", "Harold G. Longbotham");
    }
    int nauthors = 1 + static_cast<int>(rng_.Below(3));
    for (int a = 0; a < nauthors; ++a) {
      b_.AddTextElement("author", RandomAuthor());
    }
    Title(RandomTitleShape());
    b_.AddTextElement("pages", std::to_string(rng_.Range(1, 500)) + "-" +
                                   std::to_string(rng_.Range(501, 999)));
    b_.AddTextElement("year", std::to_string(rng_.Range(1984, 2005)));
    b_.AddTextElement("booktitle", kVenues[rng_.Below(6)]);
    b_.AddTextElement("url", "db/conf/x/" + std::to_string(i) + ".html");
    b_.EndElement();
  }

  void Article(int i) {
    b_.StartElement("article");
    b_.AddAttribute("key", "journals/x/" + std::to_string(i));
    int nauthors = 1 + static_cast<int>(rng_.Below(3));
    for (int a = 0; a < nauthors; ++a) {
      b_.AddTextElement("author", RandomAuthor());
    }
    // QD4 fixture: exactly one article title with the sub/<sup>/i shape.
    Title(i == 0 ? 2 : RandomTitleShape());
    b_.AddTextElement("journal", kJournals[rng_.Below(4)]);
    b_.AddTextElement("year", std::to_string(rng_.Range(1984, 2005)));
    if (rng_.Chance(1, 2)) {
      b_.AddTextElement("volume", std::to_string(rng_.Range(1, 40)));
    }
    b_.EndElement();
  }

  void Book(int i) {
    b_.StartElement("book");
    b_.AddAttribute("key", "books/x/" + std::to_string(i));
    int nauthors = 1 + static_cast<int>(rng_.Below(2));
    for (int a = 0; a < nauthors; ++a) {
      b_.AddTextElement("author", RandomBookAuthor());
    }
    Title(0);
    b_.AddTextElement("publisher", "Example Press");
    b_.AddTextElement("year", std::to_string(rng_.Range(1984, 2005)));
    b_.EndElement();
  }

  DblpOptions options_;
  Rng rng_;
  std::vector<std::string> authors_;
  int book_pool_;
  xml::Builder b_;
};

}  // namespace

xml::Document GenerateDblp(const DblpOptions& options) {
  DblpBuilder builder(options);
  return builder.Build();
}

const char* DblpXsd() {
  return R"XSD(<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="dblp">
    <xs:complexType><xs:sequence>
      <xs:element ref="inproceedings" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="article" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="book" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>

  <xs:element name="inproceedings">
    <xs:complexType><xs:sequence>
      <xs:element ref="author" maxOccurs="unbounded"/>
      <xs:element ref="title"/>
      <xs:element name="pages" type="xs:string"/>
      <xs:element ref="year"/>
      <xs:element name="booktitle" type="xs:string"/>
      <xs:element name="url" type="xs:string"/>
    </xs:sequence><xs:attribute name="key"/></xs:complexType>
  </xs:element>

  <xs:element name="article">
    <xs:complexType><xs:sequence>
      <xs:element ref="author" maxOccurs="unbounded"/>
      <xs:element ref="title"/>
      <xs:element name="journal" type="xs:string"/>
      <xs:element ref="year"/>
      <xs:element name="volume" type="xs:string" minOccurs="0"/>
    </xs:sequence><xs:attribute name="key"/></xs:complexType>
  </xs:element>

  <xs:element name="book">
    <xs:complexType><xs:sequence>
      <xs:element ref="author" maxOccurs="unbounded"/>
      <xs:element ref="title"/>
      <xs:element name="publisher" type="xs:string"/>
      <xs:element ref="year"/>
    </xs:sequence><xs:attribute name="key"/></xs:complexType>
  </xs:element>

  <xs:element name="author" type="xs:string"/>
  <xs:element name="year" type="xs:string"/>

  <xs:element name="title">
    <xs:complexType mixed="true"><xs:sequence>
      <xs:element ref="sup" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="sub" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="i" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="sup">
    <xs:complexType mixed="true"><xs:sequence>
      <xs:element ref="sub" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="i" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="sub">
    <xs:complexType mixed="true"><xs:sequence>
      <xs:element ref="sup" minOccurs="0" maxOccurs="unbounded"/>
      <xs:element ref="i" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence></xs:complexType>
  </xs:element>
  <xs:element name="i" type="xs:string"/>
</xs:schema>
)XSD";
}

}  // namespace xprel::data
